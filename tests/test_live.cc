/**
 * @file
 * Live-telemetry tests: the sample ring, the metrics sampler, the
 * Prometheus exposition encoder/parser and the scrape endpoint —
 * including the pure-observer contract (sampling at a 1 ms period
 * perturbs no study output, trace or stats dump, at any job count)
 * and concurrent TraceSession + sampler interleaving.
 */

#include <cstdio>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/experiments.hh"
#include "obs/live/endpoint.hh"
#include "obs/live/exposition.hh"
#include "obs/live/ring.hh"
#include "obs/live/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/json.hh"
#include "util/threadpool.hh"

using namespace xbsp;
using namespace xbsp::obs;

namespace
{

std::shared_ptr<const MetricSample>
sampleWithSeq(u64 seq)
{
    auto sample = std::make_shared<MetricSample>();
    sample->seq = seq;
    return sample;
}

harness::ExperimentConfig
quickConfig(std::vector<std::string> workloads)
{
    harness::ExperimentConfig config;
    config.workloads = std::move(workloads);
    config.workScale = 0.15;
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = 100000;
    config.verbose = false;
    return config;
}

/** Figure tables of a fresh suite run, rendered to text. */
std::string
renderedFigures(const std::vector<std::string>& workloads)
{
    harness::ExperimentSuite suite(quickConfig(workloads));
    std::ostringstream os;
    suite.figure3().print(os);
    suite.figure4().print(os);
    return os.str();
}

} // namespace

TEST(PromSeriesName, SanitizesDottedPaths)
{
    EXPECT_EQ(promSeriesName("kmeans.estep.distances"),
              "xbsp_kmeans_estep_distances");
    EXPECT_EQ(promSeriesName("store.hits"), "xbsp_store_hits");
    EXPECT_EQ(promSeriesName("weird-path:x/y"), "xbsp_weird_path_x_y");
    EXPECT_EQ(promSeriesName(""), "xbsp_");
}

TEST(SampleRing, LatestAndPublishedTrackPushes)
{
    SampleRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.published(), 0u);
    EXPECT_EQ(ring.latest(), nullptr);

    ring.push(sampleWithSeq(1));
    ring.push(sampleWithSeq(2));
    EXPECT_EQ(ring.published(), 2u);
    ASSERT_NE(ring.latest(), nullptr);
    EXPECT_EQ(ring.latest()->seq, 2u);
}

TEST(SampleRing, WindowIsOldestFirstAndBoundedByCapacity)
{
    SampleRing ring(4);
    for (u64 seq = 1; seq <= 10; ++seq)
        ring.push(sampleWithSeq(seq));
    EXPECT_EQ(ring.published(), 10u);

    const auto window = ring.window(8);
    ASSERT_EQ(window.size(), 4u);  // capacity-bounded
    EXPECT_EQ(window.front()->seq, 7u);
    EXPECT_EQ(window.back()->seq, 10u);
    for (std::size_t i = 1; i < window.size(); ++i)
        EXPECT_LT(window[i - 1]->seq, window[i]->seq);

    const auto two = ring.window(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two.front()->seq, 9u);
    EXPECT_EQ(two.back()->seq, 10u);
}

TEST(MetricsSampler, SnapshotsCountersDistributionsAndTimers)
{
    StatRegistry registry;
    registry.counter("alpha.count").add(7);
    registry.distribution("beta.dist").sample(3);
    registry.distribution("beta.dist").sample(5);
    registry.timer("gamma.time").addNanos(1000);

    MetricsSampler sampler(registry, {});
    sampler.sampleOnce();
    const auto sample = sampler.latest();
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->seq, 1u);
    ASSERT_EQ(sample->stats.size(), 3u);

    // liveStats() walks the sorted path map.
    EXPECT_EQ(sample->stats[0].path, "alpha.count");
    EXPECT_EQ(sample->stats[0].kind, StatKind::Counter);
    EXPECT_EQ(sample->stats[0].value, 7u);
    EXPECT_EQ(sample->stats[1].path, "beta.dist");
    EXPECT_EQ(sample->stats[1].kind, StatKind::Distribution);
    EXPECT_EQ(sample->stats[1].value, 8u);   // sum
    EXPECT_EQ(sample->stats[1].count, 2u);
    EXPECT_EQ(sample->stats[2].path, "gamma.time");
    EXPECT_EQ(sample->stats[2].kind, StatKind::Timer);
    EXPECT_EQ(sample->stats[2].value, 1000u);
    EXPECT_EQ(sample->stats[2].count, 1u);

    // First sample: deltas equal the cumulative values.
    EXPECT_EQ(sample->stats[0].deltaValue, 7u);
}

TEST(MetricsSampler, DeltasTrackChangesBetweenSamples)
{
    StatRegistry registry;
    registry.counter("work.items").add(10);

    MetricsSampler sampler(registry, {});
    sampler.sampleOnce();
    registry.counter("work.items").add(5);
    registry.counter("late.arrival").add(2);  // registered mid-run
    sampler.sampleOnce();

    const auto sample = sampler.latest();
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->seq, 2u);
    ASSERT_EQ(sample->stats.size(), 2u);
    EXPECT_EQ(sample->stats[0].path, "late.arrival");
    EXPECT_EQ(sample->stats[0].deltaValue, 2u);  // new series
    EXPECT_EQ(sample->stats[1].path, "work.items");
    EXPECT_EQ(sample->stats[1].value, 15u);
    EXPECT_EQ(sample->stats[1].deltaValue, 5u);
    EXPECT_GT(sample->deltaNanos, 0u);
}

TEST(MetricsSampler, IsAPureObserverOfTheRegistry)
{
    StatRegistry registry;
    registry.counter("only.stat").add(1);
    const std::string before = registry.jsonString(true);

    MetricsSampler sampler(registry, {1, 8});
    sampler.start();
    sampler.sampleOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sampler.stop();
    EXPECT_GE(sampler.ticks(), 2u);

    // Sampling registered nothing and mutated nothing.
    EXPECT_EQ(registry.jsonString(true), before);
}

TEST(MetricsSampler, BackgroundThreadHonoursStartStop)
{
    StatRegistry registry;
    MetricsSampler sampler(registry, {1, 16});
    EXPECT_FALSE(sampler.running());
    sampler.start();
    EXPECT_TRUE(sampler.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    const u64 ticks = sampler.ticks();
    EXPECT_GE(ticks, 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(sampler.ticks(), ticks);  // really stopped
    sampler.start();                    // restartable
    sampler.stop();
}

TEST(Exposition, RendersEveryKindWithTypesAndParsesBack)
{
    MetricSample sample;
    sample.seq = 3;
    sample.deltaNanos = 500'000'000;  // 0.5 s window
    sample.poolWorkers = 4;
    sample.progressDone = 10;
    sample.progressTotal = 40;
    sample.progressEtaSeconds = 12.5;
    sample.stats.push_back(
        {"store.hits", StatKind::Counter, 20, 0, 10, 0});
    sample.stats.push_back(
        {"kmeans.iters", StatKind::Distribution, 100, 4, 50, 2});
    sample.stats.push_back(
        {"scheduler.nodeBusy", StatKind::Timer, 2'000'000'000, 8,
         250'000'000, 2});

    const std::string text = renderExposition(sample);
    EXPECT_NE(text.find("# TYPE xbsp_store_hits_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("xbsp_store_hits_total 20\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE xbsp_store_hits_rate gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("xbsp_kmeans_iters_sum 100\n"),
              std::string::npos);
    EXPECT_NE(text.find("xbsp_kmeans_iters_count 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("xbsp_scheduler_nodeBusy_nanos_total "
                        "2000000000\n"),
              std::string::npos);

    const auto series = parseExposition(text);
    EXPECT_DOUBLE_EQ(series.at("xbsp_store_hits_total"), 20.0);
    EXPECT_DOUBLE_EQ(series.at("xbsp_store_hits_rate"), 20.0);
    EXPECT_DOUBLE_EQ(series.at("xbsp_scheduler_nodeBusy_busy_ratio"),
                     0.5);
    EXPECT_DOUBLE_EQ(series.at("xbsp_sampler_samples_total"), 3.0);
    EXPECT_DOUBLE_EQ(series.at("xbsp_pool_workers"), 4.0);
    EXPECT_DOUBLE_EQ(series.at("xbsp_progress_done"), 10.0);
    EXPECT_DOUBLE_EQ(series.at("xbsp_progress_eta_seconds"), 12.5);
}

TEST(Exposition, EverySeriesHasATypeCommentBeforeIt)
{
    MetricSample sample;
    sample.seq = 1;
    sample.stats.push_back(
        {"a.counter", StatKind::Counter, 1, 0, 1, 0});
    const std::string text = renderExposition(sample);

    // Walk line-by-line: any sample line must have been preceded by a
    // "# TYPE <name> ..." comment for exactly its series name.
    std::istringstream is(text);
    std::string line;
    std::set<std::string> typed;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::string rest = line.substr(7);
            typed.insert(rest.substr(0, rest.find(' ')));
            continue;
        }
        ASSERT_NE(line[0], '#');
        const std::string name = line.substr(0, line.find(' '));
        EXPECT_TRUE(typed.count(name)) << "untyped series " << name;
    }
}

TEST(Exposition, ParserRejectsGarbage)
{
    EXPECT_THROW(parseExposition("name_without_value\n"),
                 std::runtime_error);
    EXPECT_THROW(parseExposition("name not-a-number\n"),
                 std::runtime_error);
    EXPECT_TRUE(parseExposition("# only a comment\n\n").empty());
}

TEST(MetricsEndpoint, ServesExpositionOverUnixSocket)
{
    StatRegistry registry;
    registry.counter("served.requests").add(42);
    MetricsSampler sampler(registry, {});

    char pathTemplate[] = "/tmp/xbsp-live-test-XXXXXX";
    const int fd = mkstemp(pathTemplate);
    ASSERT_GE(fd, 0);
    close(fd);
    const std::string socketPath = pathTemplate;

    MetricsEndpoint endpoint(
        {socketPath, -1}, [&sampler] {
            sampler.sampleOnce();
            return renderExposition(*sampler.latest());
        });
    endpoint.start();
    EXPECT_TRUE(endpoint.running());

    const std::string body = httpGetUnix(socketPath);
    const auto series = parseExposition(body);
    EXPECT_DOUBLE_EQ(series.at("xbsp_served_requests_total"), 42.0);

    // Scrape again: the tick counter advances per request.
    const auto again = parseExposition(httpGetUnix(socketPath));
    EXPECT_GT(again.at("xbsp_sampler_samples_total"),
              series.at("xbsp_sampler_samples_total"));

    endpoint.stop();
    EXPECT_FALSE(endpoint.running());
    // Socket unlinked on stop.
    EXPECT_NE(access(socketPath.c_str(), F_OK), 0);
}

TEST(MetricsEndpoint, ServesOnEphemeralTcpPort)
{
    StatRegistry registry;
    registry.counter("tcp.hits").add(5);
    MetricsSampler sampler(registry, {});

    MetricsEndpoint endpoint({"", 0}, [&sampler] {
        sampler.sampleOnce();
        return renderExposition(*sampler.latest());
    });
    endpoint.start();
    const int port = endpoint.boundTcpPort();
    ASSERT_GT(port, 0);

    const auto series = parseExposition(httpGetTcp(port));
    EXPECT_DOUBLE_EQ(series.at("xbsp_tcp_hits_total"), 5.0);
    endpoint.stop();
}

TEST(LiveTelemetry, SamplerAndTraceInterleaveCleanly)
{
    // Satellite coverage: a 1 ms sampler hammering the global
    // registry while TraceSession records pipeline spans, at 1 and 8
    // jobs.  The trace must stay valid JSON and the deterministic
    // stats sections must be byte-identical across job counts.
    //
    // One throwaway run first: process-lifetime caches (the engine's
    // compiled-trace cache, the one-shot SIMD dispatch fact) warm up
    // on the first study in a process, and this test compares runs
    // *within* one process — both measured runs must be equally warm.
    renderedFigures({"gzip"});

    auto runTraced = [](u64 jobs) {
        StatRegistry::global().reset();
        TraceSession::global().clear();
        TraceSession::global().enable();
        MetricsSampler sampler(StatRegistry::global(), {1, 64});
        sampler.start();
        setGlobalJobs(jobs);
        renderedFigures({"gzip"});
        setGlobalJobs(0);
        sampler.stop();
        TraceSession::global().disable();

        std::ostringstream trace;
        TraceSession::global().writeJson(trace);
        return std::make_pair(
            StatRegistry::global().jsonString(false), trace.str());
    };

    const auto [stats1, trace1] = runTraced(1);
    const auto [stats8, trace8] = runTraced(8);
    TraceSession::global().clear();

    EXPECT_EQ(stats1, stats8);
    EXPECT_NO_THROW(parseJson(trace1));
    EXPECT_NO_THROW(parseJson(trace8));
    EXPECT_NE(trace1.find("\"pipeline\""), std::string::npos);
}

TEST(LiveTelemetry, SamplingDoesNotPerturbSuiteReports)
{
    // The acceptance contract in miniature: figure tables and the
    // deterministic stats sections are byte-identical with a 1 ms
    // sampler attached and without one.  Warm-up run first, for the
    // same reason as above: both measured runs must see the same
    // process-lifetime cache state.
    renderedFigures({"eon"});

    StatRegistry::global().reset();
    const std::string plainFigures = renderedFigures({"eon"});
    const std::string plainStats =
        StatRegistry::global().jsonString(false);

    StatRegistry::global().reset();
    MetricsSampler sampler(StatRegistry::global(), {1, 64});
    sampler.start();
    const std::string sampledFigures = renderedFigures({"eon"});
    sampler.stop();
    const std::string sampledStats =
        StatRegistry::global().jsonString(false);
    EXPECT_GE(sampler.ticks(), 1u);

    EXPECT_EQ(plainFigures, sampledFigures);
    EXPECT_EQ(plainStats, sampledStats);
}
