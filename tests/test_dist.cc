/**
 * @file
 * The distributed executor's contract, end to end: wire messages
 * round-trip, StageTask specs survive a trip through a freshly
 * exec'd process byte-identically, and — the acceptance criterion —
 * a suite submitted to an `xbsp serve` daemon backed by two worker
 * processes produces a byte-identical report to a purely local run,
 * even when one worker is killed mid-run by fault injection.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "cpu/core.hh"
#include "dist/client.hh"
#include "dist/server.hh"
#include "dist/spawn.hh"
#include "dist/stagerun.hh"
#include "dist/transport.hh"
#include "dist/wire.hh"
#include "harness/experiments.hh"
#include "obs/stats.hh"
#include "store/store.hh"

using namespace xbsp;
namespace fs = std::filesystem;

namespace
{

/** The CLI binary path, injected by the build (needs xbsp_cli). */
const char*
cliPath()
{
    return XBSP_CLI_PATH;
}

u64
counterValue(const std::string& path)
{
    return obs::StatRegistry::global().counterValue(path);
}

/** Fresh scratch directory per test, removed on teardown. */
class DistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base = fs::temp_directory_path() /
               ("xbsp_dist_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(base);
        fs::create_directories(base);
    }

    void TearDown() override { fs::remove_all(base); }

    fs::path base;
};

/** The small suite every distributed test renders. */
dist::SuiteRequest
smallRequest()
{
    dist::SuiteRequest request;
    request.figures = {"figure3"};
    request.workloads = {"gzip", "swim"};
    request.workScale = 0.25;
    request.intervalTarget = 50'000;
    return request;
}

} // namespace

TEST(DistWire, ParseAddress)
{
    const dist::Address unix1 = dist::parseAddress("unix:/tmp/s");
    EXPECT_FALSE(unix1.tcp);
    EXPECT_EQ(unix1.path, "/tmp/s");
    const dist::Address bare = dist::parseAddress("/tmp/s2");
    EXPECT_FALSE(bare.tcp);
    EXPECT_EQ(bare.path, "/tmp/s2");
    const dist::Address tcp = dist::parseAddress("tcp:4711");
    EXPECT_TRUE(tcp.tcp);
    EXPECT_EQ(tcp.port, 4711);
    EXPECT_EQ(tcp.text(), "tcp:4711");
}

TEST(DistWire, SuiteRequestFrameRoundTrip)
{
    dist::SuiteRequest request;
    request.figures = {"figure3", "table1"};
    request.workloads = {"gzip"};
    request.workScale = 0.5;
    request.intervalTarget = 123'456;
    request.maxK = 7;
    request.seed = 99;
    request.core = "decoupled";

    const std::string frame = dist::frameSuiteRequest(request);
    // Strip the 8-byte frame header (magic + size); the payload is
    // what recvFrame() hands to the dispatcher.
    ASSERT_GT(frame.size(), 8u);
    serial::Decoder d(std::string_view(frame).substr(8));
    ASSERT_EQ(dist::decodeMsgType(d), dist::MsgType::SuiteRequest);
    const dist::SuiteRequest back = dist::decodeSuiteRequest(d);
    EXPECT_EQ(back.figures, request.figures);
    EXPECT_EQ(back.workloads, request.workloads);
    EXPECT_EQ(back.workScale, request.workScale);
    EXPECT_EQ(back.intervalTarget, request.intervalTarget);
    EXPECT_EQ(back.maxK, request.maxK);
    EXPECT_EQ(back.seed, request.seed);
    EXPECT_EQ(back.core, request.core);
}

TEST(DistWire, SuiteConfigRejectsUnknownCore)
{
    dist::SuiteRequest request = smallRequest();
    request.core = "tomasulo";
    EXPECT_THROW((void)dist::suiteConfig(request),
                 std::runtime_error);
    request.core = "decoupled";
    const harness::ExperimentConfig config =
        dist::suiteConfig(request);
    EXPECT_EQ(config.study.core.kind, cpu::CoreKind::Decoupled);
    // "" keeps the server's default model.
    request.core.clear();
    EXPECT_EQ(dist::suiteConfig(request).study.core,
              harness::defaultStudyConfig().core);
}

TEST(DistWire, StageTaskCodecRoundTrip)
{
    dist::StageTask task;
    task.workload = "gzip";
    task.workScale = 0.375;
    task.config = harness::defaultStudyConfig();
    task.config.core = cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    task.config.core.predictorBits = 9;
    task.stage = "profile";
    task.index = 2;

    const std::string payload = dist::encodeStageTask(task);
    const dist::StageTask back = dist::decodeStageTask(payload);
    EXPECT_EQ(back.workload, task.workload);
    EXPECT_EQ(back.workScale, task.workScale);
    EXPECT_EQ(back.stage, task.stage);
    EXPECT_EQ(back.index, task.index);
    EXPECT_EQ(back.config.core, task.config.core);
    // The single-flight key is a pure function of the spec bytes.
    EXPECT_EQ(dist::stageTaskKey(back), dist::stageTaskKey(task));
    EXPECT_EQ(dist::encodeStageTask(back), payload);
}

TEST_F(DistTest, CrossProcessCodecRoundTrip)
{
    // Encode in this address space, re-encode in a freshly exec'd
    // process (xbsp codec-roundtrip), and byte-compare: the codec
    // contract must hold across process boundaries, not just within
    // one run's heap.
    dist::StageTask task;
    task.workload = "swim";
    task.workScale = 0.25;
    task.config = harness::defaultStudyConfig();
    task.config.intervalTarget = 50'000;
    // A thoroughly non-default core: every CoreConfig field must
    // survive the exec boundary bit-exactly, or remote workers would
    // silently simulate a different machine.
    task.config.core.kind = cpu::CoreKind::Decoupled;
    task.config.core.fetchWidth = 8;
    task.config.core.ftqDepth = 32;
    task.config.core.predictorBits = 10;
    task.config.core.mispredictPenalty = 7;
    task.stage = "vli";
    task.index = 0;
    const std::string payload = dist::encodeStageTask(task);

    const std::string file = (base / "task.bin").string();
    {
        std::ofstream os(file, std::ios::binary);
        os.write(payload.data(),
                 static_cast<std::streamsize>(payload.size()));
        ASSERT_TRUE(os.good());
    }

    const int pid =
        dist::spawnProcess({cliPath(), "codec-roundtrip", file});
    ASSERT_GT(pid, 0);
    EXPECT_EQ(dist::waitProcess(pid), 0);

    std::ifstream is(file + ".rt", std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    EXPECT_EQ(buf.str(), payload);
}

namespace
{

/**
 * The serve-mode acceptance run: render `request` locally, then
 * through an in-process daemon backed by two spawned workers (one
 * rigged to die after its first task), and require byte-identical
 * reports.  Shared by the default-core and decoupled-core variants.
 */
void
checkSuiteByteIdenticalUnderWorkerDeath(const fs::path& base,
                                        const dist::SuiteRequest& request)
{
    // Local baseline: the daemon's exact rendering path, no backend,
    // its own cache directory.
    store::ArtifactStore::configureGlobal(
        {(base / "cacheA").string(), true});
    const std::string local = dist::renderSuiteReport(request, nullptr);
    ASSERT_FALSE(local.empty());

    // Distributed run: in-process daemon on a unix socket, a fresh
    // cache directory, and two spawned `xbsp work` processes — one
    // rigged to die after its first task (mid-protocol death; the
    // executor must requeue its in-flight work).
    store::ArtifactStore::configureGlobal(
        {(base / "cacheB").string(), true});
    const u64 completed0 = counterValue("dist.tasks.completed");
    const u64 lost0 = counterValue("dist.workers.lost");

    dist::ServerOptions so;
    so.unixPath = (base / "sock").string();
    so.taskTimeoutMs = 60'000;
    dist::Server server(so);
    std::thread serveThread([&server] { server.serve(); });

    const std::string connect = "unix:" + so.unixPath;
    const int w1 = dist::spawnProcess(
        {cliPath(), "work", "--connect", connect, "--worker-name",
         "w1"});
    const int w2 = dist::spawnProcess(
        {cliPath(), "work", "--connect", connect, "--worker-name",
         "w2"},
        {"XBSP_DIST_FAULT=kill-after:1"});
    ASSERT_GT(w1, 0);
    ASSERT_GT(w2, 0);
    for (int i = 0; i < 200 && server.executor().workerCount() < 2;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_EQ(server.executor().workerCount(), 2u);

    // Submit through the real client/daemon socket path.
    dist::SuiteResponse response;
    ASSERT_NO_THROW(response = dist::submitSuite(connect, request));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.report, local);

    // Remote execution actually happened, and the rigged worker's
    // death was observed (its tasks were recovered, not lost — the
    // report above proves that).
    EXPECT_GT(counterValue("dist.tasks.completed"), completed0);
    EXPECT_GE(counterValue("dist.workers.lost"), lost0 + 1);

    server.stop();
    serveThread.join();
    EXPECT_EQ(dist::waitProcess(w2), 3);  // injected _exit(3)
    EXPECT_EQ(dist::waitProcess(w1), 0);  // drained via Shutdown
}

} // namespace

TEST_F(DistTest, SuiteByteIdenticalUnderWorkerDeath)
{
    checkSuiteByteIdenticalUnderWorkerDeath(base, smallRequest());
}

TEST_F(DistTest, DecoupledSuiteByteIdenticalUnderWorkerDeath)
{
    // Same acceptance run with the non-default timing core riding in
    // the request: the workers must simulate the decoupled machine
    // (CoreConfig travels inside every StageTask), or the reports
    // diverge.
    dist::SuiteRequest request = smallRequest();
    request.workloads = {"swim"};
    request.core = "decoupled";
    checkSuiteByteIdenticalUnderWorkerDeath(base, request);
}
