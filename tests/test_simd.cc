/**
 * @file
 * Bit-identity guard for the vector-kernel layer: whatever
 * implementation the runtime dispatch picks (AVX2, NEON or scalar),
 * every kernel must return the *same bits* as the scalar reference on
 * every input — odd lengths exercising the tail path, ±0.0,
 * denormals, empty and single-element inputs — and padding rows with
 * +0.0 must be exactly transparent.  This is the foundation the
 * end-to-end equivalence suite (test_clustering_equiv) builds on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "obs/stats.hh"
#include "util/rng.hh"
#include "util/simd/simd.hh"

using namespace xbsp;

namespace
{

u64
bits(double v)
{
    u64 out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

/** Lengths hitting every tail residue plus a few large sizes. */
const std::size_t kLengths[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                9,  11, 13, 16, 31,  33,  64, 100,
                                255, 1023};

simd::AlignedVec
randomVec(std::size_t n, u64 seed)
{
    Rng rng(seed);
    simd::AlignedVec v(n);
    for (double& x : v)
        x = rng.nextDouble(-3.0, 3.0);
    return v;
}

} // namespace

TEST(Simd, ScalarReferenceAlwaysAvailable)
{
    EXPECT_TRUE(simd::supported(simd::Arch::Scalar));
    EXPECT_EQ(simd::scalarKernels().arch, simd::Arch::Scalar);
    EXPECT_GE(static_cast<int>(simd::bestSupported()),
              static_cast<int>(simd::Arch::Scalar));
    EXPECT_STREQ(simd::archName(simd::Arch::Scalar), "scalar");
    EXPECT_STREQ(simd::archName(simd::Arch::Avx2), "avx2");
    EXPECT_STREQ(simd::archName(simd::Arch::Neon), "neon");
}

TEST(Simd, SqDistBitIdenticalAcrossLengths)
{
    const simd::Kernels& vec = simd::active();
    const simd::Kernels& ref = simd::scalarKernels();
    for (const std::size_t n : kLengths) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const simd::AlignedVec a = randomVec(n, 1000 + n);
        const simd::AlignedVec b = randomVec(n, 2000 + n);
        EXPECT_EQ(bits(vec.sqDist(a.data(), b.data(), n)),
                  bits(ref.sqDist(a.data(), b.data(), n)));
    }
}

TEST(Simd, SumAndAxpyBitIdenticalAcrossLengths)
{
    const simd::Kernels& vec = simd::active();
    const simd::Kernels& ref = simd::scalarKernels();
    for (const std::size_t n : kLengths) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const simd::AlignedVec a = randomVec(n, 3000 + n);
        EXPECT_EQ(bits(vec.sum(a.data(), n)),
                  bits(ref.sum(a.data(), n)));

        const simd::AlignedVec src = randomVec(n, 4000 + n);
        simd::AlignedVec dstVec = randomVec(n, 5000 + n);
        simd::AlignedVec dstRef = dstVec;
        vec.axpy(dstVec.data(), src.data(), 1.7, n);
        ref.axpy(dstRef.data(), src.data(), 1.7, n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(bits(dstVec[i]), bits(dstRef[i])) << "i=" << i;
    }
}

TEST(Simd, BatchMatchesSingleRowKernel)
{
    const simd::Kernels& vec = simd::active();
    const simd::Kernels& ref = simd::scalarKernels();
    for (const std::size_t dims : {1ul, 3ul, 8ul, 15ul}) {
        const std::size_t stride = simd::padded(dims);
        const std::size_t k = 7;
        const simd::AlignedVec point = randomVec(stride, 42 + dims);
        simd::AlignedVec rows(k * stride, 0.0);
        for (std::size_t c = 0; c < k; ++c) {
            const simd::AlignedVec row = randomVec(dims, 77 * c + dims);
            std::copy(row.begin(), row.end(),
                      rows.begin() + c * stride);
        }
        std::vector<double> out(k, -1.0);
        vec.sqDistBatch(point.data(), rows.data(), k, stride, stride,
                        out.data());
        for (std::size_t c = 0; c < k; ++c) {
            SCOPED_TRACE("dims=" + std::to_string(dims) +
                         " c=" + std::to_string(c));
            EXPECT_EQ(bits(out[c]),
                      bits(ref.sqDist(point.data(),
                                      rows.data() + c * stride,
                                      stride)));
        }
    }
}

TEST(Simd, SpecialValuesMatchScalar)
{
    const simd::Kernels& vec = simd::active();
    const simd::Kernels& ref = simd::scalarKernels();
    const double denorm = std::numeric_limits<double>::denorm_min();
    const simd::AlignedVec a{+0.0, -0.0, denorm,  -denorm, 1e-308,
                             -0.0, +0.0, -denorm, denorm};
    const simd::AlignedVec b{-0.0, +0.0, -denorm, denorm,  -1e-308,
                             +0.0, -0.0, denorm,  -denorm};
    for (std::size_t n = 0; n <= a.size(); ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        EXPECT_EQ(bits(vec.sqDist(a.data(), b.data(), n)),
                  bits(ref.sqDist(a.data(), b.data(), n)));
        EXPECT_EQ(bits(vec.sum(a.data(), n)),
                  bits(ref.sum(a.data(), n)));
    }
}

TEST(Simd, EmptyAndSingleElementInputs)
{
    const simd::Kernels& vec = simd::active();
    // n == 0: exactly +0.0, never -0.0 or garbage.
    EXPECT_EQ(bits(vec.sqDist(nullptr, nullptr, 0)), bits(+0.0));
    EXPECT_EQ(bits(vec.sum(nullptr, 0)), bits(+0.0));
    vec.axpy(nullptr, nullptr, 2.0, 0); // must not touch memory

    const double a = 1.5, b = -0.25;
    EXPECT_EQ(bits(vec.sqDist(&a, &b, 1)), bits((a - b) * (a - b)));
    EXPECT_EQ(bits(vec.sum(&a, 1)), bits(a));
}

TEST(Simd, PaddingWithPositiveZeroIsTransparent)
{
    const simd::Kernels& vec = simd::active();
    for (const std::size_t n : {1ul, 3ul, 5ul, 13ul, 15ul}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const std::size_t padded = simd::padded(n);
        simd::AlignedVec a = randomVec(n, 6000 + n);
        simd::AlignedVec b = randomVec(n, 7000 + n);
        a.resize(padded, +0.0);
        b.resize(padded, +0.0);
        EXPECT_EQ(bits(vec.sqDist(a.data(), b.data(), padded)),
                  bits(vec.sqDist(a.data(), b.data(), n)));
        EXPECT_EQ(bits(vec.sum(a.data(), padded)),
                  bits(vec.sum(a.data(), n)));

        // axpy over the padded length must leave +0.0 padding intact.
        simd::AlignedVec dst(padded, +0.0);
        const simd::AlignedVec src = a;
        vec.axpy(dst.data(), src.data(), -2.5, padded);
        for (std::size_t i = n; i < padded; ++i)
            EXPECT_EQ(bits(dst[i]), bits(+0.0)) << "i=" << i;
    }
}

TEST(Simd, SelectControlsDispatch)
{
    // Force the reference, confirm, then restore the automatic pick.
    EXPECT_TRUE(simd::select("scalar"));
    EXPECT_EQ(simd::active().arch, simd::Arch::Scalar);
    EXPECT_EQ(obs::StatRegistry::global().counterValue(
                  "simd.dispatch.arch"),
              static_cast<u64>(simd::Arch::Scalar));

    EXPECT_FALSE(simd::select("bogus-mode"));
    EXPECT_EQ(simd::active().arch, simd::Arch::Scalar);

    EXPECT_TRUE(simd::select("auto"));
    EXPECT_EQ(simd::active().arch, simd::bestSupported());
}

namespace
{

/** Every arch table this build + CPU can run. */
std::vector<const simd::Kernels*>
runnableTables()
{
    std::vector<const simd::Kernels*> tables{&simd::scalarKernels()};
    for (const char* mode : {"avx2", "neon"}) {
        if (simd::select(mode))
            tables.push_back(&simd::active());
    }
    simd::select("auto");
    return tables;
}

/** Associativities covering the vector groups, tails and fallbacks. */
const u32 kWays[] = {1, 2, 3, 4, 5, 7, 8, 11, 12, 15, 16, 20, 24};

/** A unique valid (odd) tag word for way w. */
u64
tagFor(u32 w, u64 salt)
{
    return ((salt + w + 1) << 1) | 1;
}

} // namespace

TEST(Simd, FindWayMatchesReferenceAtEveryPosition)
{
    for (const simd::Kernels* k : runnableTables()) {
        for (u32 ways : kWays) {
            std::vector<u64> tags(ways);
            for (u32 w = 0; w < ways; ++w)
                tags[w] = tagFor(w, 0x1000);
            // Present at each way, including tag values with the
            // high bit set (addresses near the top of the space).
            for (u32 target = 0; target < ways; ++target) {
                EXPECT_EQ(k->findWay(tags.data(), ways, tags[target]),
                          target)
                    << simd::archName(k->arch) << " ways=" << ways;
                tags[target] |= 1ull << 63;
                EXPECT_EQ(k->findWay(tags.data(), ways, tags[target]),
                          target);
                tags[target] = tagFor(target, 0x1000);
            }
            // Absent key, and a free way (0) never matching.
            tags[ways / 2] = 0;
            EXPECT_EQ(k->findWay(tags.data(), ways, tagFor(77, 0x9999)),
                      simd::kWayNotFound)
                << simd::archName(k->arch) << " ways=" << ways;
        }
    }
}

TEST(Simd, VictimWayPrefersLowestFreeWay)
{
    for (const simd::Kernels* k : runnableTables()) {
        for (u32 ways : kWays) {
            std::vector<u64> tags(ways);
            std::vector<u64> metas(ways);
            for (u32 w = 0; w < ways; ++w) {
                tags[w] = tagFor(w, 0x2000);
                metas[w] = (static_cast<u64>(w + 10) << 1) | (w & 1);
            }
            for (u32 freeAt = 0; freeAt < ways; ++freeAt) {
                tags[freeAt] = 0;
                // A second free way above must lose to the lower one.
                if (freeAt + 2 < ways)
                    tags[freeAt + 2] = 0;
                EXPECT_EQ(
                    k->victimWay(tags.data(), metas.data(), ways),
                    freeAt)
                    << simd::archName(k->arch) << " ways=" << ways;
                for (u32 w = 0; w < ways; ++w)
                    tags[w] = tagFor(w, 0x2000);
            }
        }
    }
}

TEST(Simd, VictimWayPicksUnsignedMinimumMetaTiesLow)
{
    Rng rng(20260808);
    for (const simd::Kernels* k : runnableTables()) {
        for (u32 ways : kWays) {
            std::vector<u64> tags(ways);
            for (u32 w = 0; w < ways; ++w)
                tags[w] = tagFor(w, 0x3000);
            std::vector<u64> metas(ways);
            for (int round = 0; round < 200; ++round) {
                // High-bit-heavy values specifically exercise the
                // unsigned ordering (a signed vector compare would
                // invert them); small ranges force ties.
                const u64 mask =
                    (round % 3 == 0) ? 0xfull
                    : (round % 3 == 1)
                        ? ~0ull
                        : (0xfull | (1ull << 63));
                for (u32 w = 0; w < ways; ++w)
                    metas[w] = rng.next() & mask;
                u32 expect = 0;
                for (u32 w = 1; w < ways; ++w) {
                    if (metas[w] < metas[expect])
                        expect = w;
                }
                EXPECT_EQ(
                    k->victimWay(tags.data(), metas.data(), ways),
                    expect)
                    << simd::archName(k->arch) << " ways=" << ways
                    << " round=" << round;
            }
        }
    }
}
