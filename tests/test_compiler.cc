/**
 * @file
 * Unit tests for the model compiler: per-target scaling, debug-info
 * emission, and the optimizer transforms that break mappability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_support.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

TEST(Compiler, FourTargetsInCanonicalOrder)
{
    const auto bins = test::compileFour(test::tinyProgram());
    ASSERT_EQ(bins.size(), 4u);
    EXPECT_EQ(bin::targetName(bins[0].target), "32u");
    EXPECT_EQ(bin::targetName(bins[1].target), "32o");
    EXPECT_EQ(bin::targetName(bins[2].target), "64u");
    EXPECT_EQ(bin::targetName(bins[3].target), "64o");
}

TEST(Compiler, Deterministic)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary a = compile::compileProgram(p, bin::target32o);
    const bin::Binary b = compile::compileProgram(p, bin::target32o);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].instrs, b.blocks[i].instrs);
        EXPECT_EQ(a.blocks[i].memOps, b.blocks[i].memOps);
    }
    ASSERT_EQ(a.markers.size(), b.markers.size());
}

TEST(Compiler, UnoptimizedExecutesMoreInstructions)
{
    const auto bins = test::compileFour(test::tinyProgram());
    const InstrCount i32u = bin::staticDynamicInstrCount(bins[0]);
    const InstrCount i32o = bin::staticDynamicInstrCount(bins[1]);
    const InstrCount i64u = bin::staticDynamicInstrCount(bins[2]);
    const InstrCount i64o = bin::staticDynamicInstrCount(bins[3]);
    EXPECT_GT(i32u, 2 * i32o);
    EXPECT_GT(i64u, 2 * i64o);
    // 64-bit code is denser.
    EXPECT_LT(i64u, i32u);
    EXPECT_LT(i64o, i32o);
}

TEST(Compiler, AlwaysInlineRemovesSymbolUnderO2)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary unopt =
        compile::compileProgram(p, bin::target32u);
    const bin::Binary opt = compile::compileProgram(p, bin::target32o);
    EXPECT_NE(unopt.findProc("helper"), invalidId);
    EXPECT_EQ(opt.findProc("helper"), invalidId);
}

TEST(Compiler, PartialInlineKeepsSymbolWithLowerEntryCount)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary unopt =
        compile::compileProgram(p, bin::target32u);
    const bin::Binary opt = compile::compileProgram(p, bin::target32o);
    ASSERT_NE(opt.findProc("sometimes"), invalidId);

    const auto profU = test::profileMarkers(unopt);
    const auto profO = test::profileMarkers(opt);
    const u64 entriesU = test::markerGroupCount(
        unopt, profU, bin::MarkerKind::ProcEntry, "sometimes", 0);
    const u64 entriesO = test::markerGroupCount(
        opt, profO, bin::MarkerKind::ProcEntry, "sometimes", 0);
    // Two static sites, each called 5x; one site inlined under -O2.
    EXPECT_EQ(entriesU, 10u);
    EXPECT_EQ(entriesO, 5u);
}

TEST(Compiler, InlinedLoopKeepsLineAndCount)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary unopt =
        compile::compileProgram(p, bin::target32u);
    const bin::Binary opt = compile::compileProgram(p, bin::target32o);

    // helper's loop is the first loop in the program (line 2: the
    // procedure body starts at line 2 after... find it dynamically:
    // take the loop line from the unoptimized binary's marker for
    // proc "helper".
    u32 helperLoopLine = 0;
    for (const auto& marker : unopt.markers) {
        if (marker.kind == bin::MarkerKind::LoopEntry &&
            unopt.procs[marker.procId].name == "helper") {
            helperLoopLine = marker.line;
        }
    }
    ASSERT_GT(helperLoopLine, 0u);

    const auto profU = test::profileMarkers(unopt);
    const auto profO = test::profileMarkers(opt);
    // 2 call sites x 5 outer iterations = 10 entries; the clones in
    // the optimized binary sum to the same count.
    EXPECT_EQ(test::markerGroupCount(unopt, profU,
                                     bin::MarkerKind::LoopEntry, "",
                                     helperLoopLine), 10u);
    EXPECT_EQ(test::markerGroupCount(opt, profO,
                                     bin::MarkerKind::LoopEntry, "",
                                     helperLoopLine), 10u);
    // ...and there are two clone markers in the optimized binary.
    u32 clones = 0;
    for (const auto& marker : opt.markers) {
        if (marker.kind == bin::MarkerKind::LoopEntry &&
            marker.line == helperLoopLine) {
            ++clones;
        }
    }
    EXPECT_EQ(clones, 2u);
}

TEST(Compiler, UnrollDividesBranchCountKeepsEntryCount)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary unopt =
        compile::compileProgram(p, bin::target32u);
    const bin::Binary opt = compile::compileProgram(p, bin::target32o);

    u32 innerLine = 0;
    for (const auto& marker : unopt.markers) {
        if (marker.kind == bin::MarkerKind::LoopBranch &&
            unopt.procs[marker.procId].name == "unrolled" &&
            marker.line > innerLine) {
            innerLine = marker.line; // the nested (higher-line) loop
        }
    }
    ASSERT_GT(innerLine, 0u);

    const auto profU = test::profileMarkers(unopt);
    const auto profO = test::profileMarkers(opt);
    const u64 branchesU = test::markerGroupCount(
        unopt, profU, bin::MarkerKind::LoopBranch, "", innerLine);
    const u64 branchesO = test::markerGroupCount(
        opt, profO, bin::MarkerKind::LoopBranch, "", innerLine);
    // 5 calls x 40 outer x 16 iterations = 3200; unrolled by 4.
    EXPECT_EQ(branchesU, 3200u);
    EXPECT_EQ(branchesO, 800u);
    EXPECT_EQ(test::markerGroupCount(unopt, profU,
                                     bin::MarkerKind::LoopEntry, "",
                                     innerLine),
              test::markerGroupCount(opt, profO,
                                     bin::MarkerKind::LoopEntry, "",
                                     innerLine));
}

TEST(Compiler, SplitDuplicatesLoopMarkersOnSameLine)
{
    const ir::Program p = test::trickyProgram();
    const bin::Binary unopt =
        compile::compileProgram(p, bin::target32u);
    const bin::Binary opt = compile::compileProgram(p, bin::target32o);

    u32 splitLine = 0;
    for (const auto& marker : unopt.markers) {
        if (marker.kind == bin::MarkerKind::LoopEntry &&
            unopt.procs[marker.procId].name == "split") {
            splitLine = marker.line;
        }
    }
    ASSERT_GT(splitLine, 0u);

    const auto profU = test::profileMarkers(unopt);
    const auto profO = test::profileMarkers(opt);
    // 5 calls, 60 trips: entries 5 vs 10 (doubled), branches 300 vs
    // 600 (doubled) -> count mismatch, which the matcher rejects.
    EXPECT_EQ(test::markerGroupCount(unopt, profU,
                                     bin::MarkerKind::LoopEntry, "",
                                     splitLine), 5u);
    EXPECT_EQ(test::markerGroupCount(opt, profO,
                                     bin::MarkerKind::LoopEntry, "",
                                     splitLine), 10u);
    EXPECT_EQ(test::markerGroupCount(unopt, profU,
                                     bin::MarkerKind::LoopBranch, "",
                                     splitLine), 300u);
    EXPECT_EQ(test::markerGroupCount(opt, profO,
                                     bin::MarkerKind::LoopBranch, "",
                                     splitLine), 600u);
}

TEST(Compiler, PassTogglesDisableTransforms)
{
    const ir::Program p = test::trickyProgram();
    compile::CompileOptions off;
    off.enableInlining = false;
    off.enableUnrolling = false;
    off.enableLoopSplitting = false;
    const bin::Binary opt =
        compile::compileProgram(p, bin::target32o, off);
    EXPECT_NE(opt.findProc("helper"), invalidId);
    // No split clones: exactly one loop-entry marker per source loop.
    std::map<u32, int> perLine;
    for (const auto& marker : opt.markers) {
        if (marker.kind == bin::MarkerKind::LoopEntry)
            ++perLine[marker.line];
    }
    for (const auto& [line, count] : perLine)
        EXPECT_EQ(count, 1) << "line " << line;
}

TEST(Compiler, FootprintGrowsOn64BitForPointerData)
{
    ir::ProgramBuilder b("ptr");
    b.procedure("main").block(
        10, 4, ir::chasePattern(1, 1u << 20, 1.0));
    const ir::Program p = b.build();
    const bin::Binary b32 = compile::compileProgram(p, bin::target32o);
    const bin::Binary b64 = compile::compileProgram(p, bin::target64o);
    u64 ws32 = 0, ws64 = 0;
    for (const auto& blk : b32.blocks)
        ws32 = std::max(ws32, blk.pattern.workingSet);
    for (const auto& blk : b64.blocks)
        ws64 = std::max(ws64, blk.pattern.workingSet);
    EXPECT_EQ(ws32, 1u << 20);
    EXPECT_NEAR(static_cast<double>(ws64),
                1.75 * static_cast<double>(ws32), 1.0);
}

TEST(Compiler, SpillTrafficHigherUnoptimized)
{
    const auto bins = test::compileFour(test::tinyProgram());
    auto stackFraction = [](const bin::Binary& binary) {
        u64 stack = 0, instrs = 0;
        for (const auto& blk : binary.blocks) {
            stack += blk.stackOps;
            instrs += blk.instrs;
        }
        return static_cast<double>(stack) /
               static_cast<double>(instrs);
    };
    EXPECT_GT(stackFraction(bins[0]), 2.0 * stackFraction(bins[1]));
}

TEST(Compiler, CheckBinaryAcceptsAllWorkloads)
{
    // compileProgram runs checkBinary internally; cover every
    // workload x target combination.
    for (const auto& info : workloads::suite()) {
        const ir::Program p = info.factory(0.05);
        for (const auto& target : compile::standardTargets())
            (void)compile::compileProgram(p, target);
    }
    SUCCEED();
}

TEST(Compiler, DescribeMentionsProcsAndLoops)
{
    const bin::Binary b =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const std::string text = bin::describe(b);
    EXPECT_NE(text.find("proc main"), std::string::npos);
    EXPECT_NE(text.find("proc work"), std::string::npos);
    EXPECT_NE(text.find("loop trips=100"), std::string::npos);
}
