/**
 * @file
 * Unit tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include "util/options.hh"

using namespace xbsp;

namespace
{

Options
makeParser()
{
    Options options("test");
    options.addString("name", "a string", "default");
    options.addUint("count", "an int", 7);
    options.addDouble("ratio", "a double", 0.5);
    options.addBool("flag", "a bool", false);
    options.addBool("on", "a default-true bool", true);
    return options;
}

bool
parse(Options& options, std::vector<const char*> args)
{
    args.insert(args.begin(), "prog");
    return options.parse(static_cast<int>(args.size()), args.data());
}

} // namespace

TEST(Options, Defaults)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {}));
    EXPECT_EQ(options.getString("name"), "default");
    EXPECT_EQ(options.getUint("count"), 7u);
    EXPECT_DOUBLE_EQ(options.getDouble("ratio"), 0.5);
    EXPECT_FALSE(options.getBool("flag"));
    EXPECT_TRUE(options.getBool("on"));
}

TEST(Options, EqualsForm)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {"--name=abc", "--count=12",
                                "--ratio=1.25", "--flag=true"}));
    EXPECT_EQ(options.getString("name"), "abc");
    EXPECT_EQ(options.getUint("count"), 12u);
    EXPECT_DOUBLE_EQ(options.getDouble("ratio"), 1.25);
    EXPECT_TRUE(options.getBool("flag"));
}

TEST(Options, SpaceForm)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {"--name", "xyz", "--count", "3"}));
    EXPECT_EQ(options.getString("name"), "xyz");
    EXPECT_EQ(options.getUint("count"), 3u);
}

TEST(Options, BareAndNegatedBools)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {"--flag", "--no-on"}));
    EXPECT_TRUE(options.getBool("flag"));
    EXPECT_FALSE(options.getBool("on"));
}

TEST(Options, Positional)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {"pos1", "--count", "2", "pos2"}));
    ASSERT_EQ(options.positional().size(), 2u);
    EXPECT_EQ(options.positional()[0], "pos1");
    EXPECT_EQ(options.positional()[1], "pos2");
}

TEST(Options, HelpReturnsFalse)
{
    Options options = makeParser();
    EXPECT_FALSE(parse(options, {"--help"}));
}

TEST(Options, UnknownOptionFatal)
{
    Options options = makeParser();
    EXPECT_EXIT(parse(options, {"--bogus"}),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(Options, BadIntegerFatal)
{
    Options options = makeParser();
    EXPECT_EXIT(parse(options, {"--count", "abc"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
}

TEST(Options, MissingValueFatal)
{
    Options options = makeParser();
    EXPECT_EXIT(parse(options, {"--name"}),
                ::testing::ExitedWithCode(1), "requires a value");
}

TEST(Options, WrongTypeAccessPanics)
{
    Options options = makeParser();
    EXPECT_TRUE(parse(options, {}));
    EXPECT_DEATH((void)options.getUint("name"), "wrong type");
}
