/**
 * @file
 * Unit tests for the snapshot collectors and the detailed-run driver.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "sim/detailed.hh"
#include "test_support.hh"

using namespace xbsp;

TEST(SnapshotSeries, DeltasFromAbsoluteCuts)
{
    sim::SnapshotSeries series;
    series.snapshot(100, 300);
    series.snapshot(250, 900);
    series.finish(400, 1000);
    const auto& intervals = series.intervals();
    ASSERT_EQ(intervals.size(), 3u);
    EXPECT_EQ(intervals[0].instrs, 100u);
    EXPECT_EQ(intervals[0].cycles, 300u);
    EXPECT_EQ(intervals[1].instrs, 150u);
    EXPECT_EQ(intervals[1].cycles, 600u);
    EXPECT_EQ(intervals[2].instrs, 150u);
    EXPECT_EQ(intervals[2].cycles, 100u);
    EXPECT_DOUBLE_EQ(intervals[0].cpi(), 3.0);
}

TEST(SnapshotSeries, ZeroInstructionIntervalsPassThrough)
{
    // Consecutive cuts at the same instruction count are legal (two
    // interval boundaries with no committed work between them, e.g.
    // back-to-back markers) and must yield explicit zero-length
    // intervals rather than panic or merge.
    sim::SnapshotSeries series;
    series.snapshot(100, 300);
    series.snapshot(100, 300);
    series.snapshot(200, 500);
    series.finish(250, 600);
    const auto& intervals = series.intervals();
    ASSERT_EQ(intervals.size(), 4u);
    EXPECT_EQ(intervals[1].instrs, 0u);
    EXPECT_EQ(intervals[1].cycles, 0u);
    EXPECT_DOUBLE_EQ(intervals[1].cpi(), 0.0);
    EXPECT_EQ(intervals[2].instrs, 100u);
    EXPECT_EQ(intervals[3].instrs, 50u);
}

TEST(SnapshotSeries, TrailingCutKeepsLateCycles)
{
    // A final cut at the end-of-run instruction count is dropped,
    // but cycles charged after it (e.g. a mispredict penalty on the
    // last block) must land in the merged final interval, keeping
    // interval sums equal to run totals.
    sim::SnapshotSeries series;
    series.snapshot(100, 300);
    series.snapshot(200, 700);
    series.finish(200, 750);
    const auto& intervals = series.intervals();
    ASSERT_EQ(intervals.size(), 2u);
    EXPECT_EQ(intervals[1].instrs, 100u);
    EXPECT_EQ(intervals[1].cycles, 450u);
}

TEST(SnapshotSeries, TrailingCutAtEndIsMerged)
{
    sim::SnapshotSeries series;
    series.snapshot(100, 300);
    series.snapshot(400, 1000);
    series.finish(400, 1000); // coincides with last snapshot
    EXPECT_EQ(series.intervals().size(), 2u);
}

TEST(SnapshotSeries, MisusePanics)
{
    sim::SnapshotSeries series;
    series.finish(10, 10);
    EXPECT_DEATH(series.snapshot(20, 20), "after finish");
    sim::SnapshotSeries unfinished;
    EXPECT_DEATH((void)unfinished.intervals(), "before finish");
    sim::SnapshotSeries backwards;
    backwards.snapshot(100, 100);
    EXPECT_DEATH(backwards.finish(50, 200), "monotonic");
}

TEST(DetailedRun, FullTotalsMatchPlainSimulation)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    sim::DetailedRunRequest request;
    const sim::DetailedRunResult result =
        sim::runDetailed(binary, request);
    EXPECT_EQ(result.totals.instructions,
              bin::staticDynamicInstrCount(binary));
    EXPECT_GT(result.totals.cycles, result.totals.instructions);
    EXPECT_GT(result.memory.refs, 0u);
    EXPECT_EQ(result.memory.refs,
              result.memory.l1Hits + result.memory.l2Hits +
                  result.memory.l3Hits + result.memory.dramAccesses);
    EXPECT_TRUE(result.fliIntervals.empty());
    EXPECT_TRUE(result.vliIntervals.empty());
}

TEST(DetailedRun, FliIntervalsMatchProfileBoundaries)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 5000);

    sim::DetailedRunRequest request;
    request.fliBoundaries = pass.fliBoundaries;
    const sim::DetailedRunResult result =
        sim::runDetailed(binary, request);

    ASSERT_EQ(result.fliIntervals.size(), pass.fliIntervals.size());
    Cycles totalCycles = 0;
    for (std::size_t i = 0; i < result.fliIntervals.size(); ++i) {
        EXPECT_EQ(result.fliIntervals[i].instrs,
                  pass.fliIntervals.lengths[i]);
        totalCycles += result.fliIntervals[i].cycles;
    }
    EXPECT_EQ(totalCycles, result.totals.cycles);
}

TEST(DetailedRun, FinalPartialIntervalUnderBothCores)
{
    // Drop the last FLI boundary: the run now ends mid-interval and
    // the snapshotter must emit a final partial interval whose sums
    // still equal the run totals — under both timing backends.
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 5000);
    ASSERT_GT(pass.fliBoundaries.size(), 1u);

    for (const cpu::CoreKind kind :
         {cpu::CoreKind::InOrder, cpu::CoreKind::Decoupled}) {
        sim::DetailedRunRequest request;
        request.fliBoundaries = pass.fliBoundaries;
        request.fliBoundaries.pop_back();
        request.core = cpu::coreConfigFor(kind);
        const sim::DetailedRunResult result =
            sim::runDetailed(binary, request);

        // One fewer interval: the last profile interval has no
        // closing cut, so its work lands in the final (merged)
        // partial interval emitted at run end.
        ASSERT_EQ(result.fliIntervals.size(),
                  pass.fliIntervals.size() - 1)
            << "core " << cpu::coreKindName(kind);
        InstrCount instrs = 0;
        Cycles cycles = 0;
        for (const sim::IntervalStats& interval :
             result.fliIntervals) {
            instrs += interval.instrs;
            cycles += interval.cycles;
        }
        EXPECT_EQ(instrs, result.totals.instructions)
            << "core " << cpu::coreKindName(kind);
        EXPECT_EQ(cycles, result.totals.cycles)
            << "core " << cpu::coreKindName(kind);
    }
}

TEST(DetailedRun, DecoupledIntervalSumsMatchTotals)
{
    // The decoupled frontend charges bubbles and penalties between
    // block events; the snapshot gating must still partition every
    // cycle into exactly one interval.
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 5000);

    sim::DetailedRunRequest request;
    request.fliBoundaries = pass.fliBoundaries;
    request.core = cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    const sim::DetailedRunResult result =
        sim::runDetailed(binary, request);

    EXPECT_GT(result.totals.mispredicts, 0u);
    Cycles cycles = 0;
    for (const sim::IntervalStats& interval : result.fliIntervals)
        cycles += interval.cycles;
    EXPECT_EQ(cycles, result.totals.cycles);
}

TEST(DetailedRun, WrongBoundariesPanic)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    sim::DetailedRunRequest request;
    request.fliBoundaries = {1234}; // not a real block boundary
    EXPECT_DEATH((void)sim::runDetailed(binary, request), "missed");
}

TEST(DetailedRun, CyclesDeterministic)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target64o);
    sim::DetailedRunRequest request;
    const auto a = sim::runDetailed(binary, request);
    const auto b = sim::runDetailed(binary, request);
    EXPECT_EQ(a.totals.cycles, b.totals.cycles);
    EXPECT_EQ(a.memory.l1Hits, b.memory.l1Hits);
}

TEST(DetailedRun, UnoptimizedFasterPerInstructionButSlowerOverall)
{
    // Optimized binaries drop cheap instructions, so their CPI rises
    // while total cycles fall — the pattern the speedup studies need.
    const auto bins = test::compileFour(test::tinyProgram());
    sim::DetailedRunRequest request;
    const auto unopt = sim::runDetailed(bins[0], request);
    const auto opt = sim::runDetailed(bins[1], request);
    EXPECT_GT(unopt.totals.cycles, opt.totals.cycles);
    EXPECT_LT(unopt.totals.cpi(), opt.totals.cpi());
}
