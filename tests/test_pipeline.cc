/**
 * @file
 * Task-graph scheduler contract tests: dependency ordering,
 * deterministic commits and errors at any job count, cache-probe
 * dispatch, failure isolation, dumps — plus the golden study-level
 * check that the stage-decomposed pipeline reproduces the
 * pre-refactor barrier orchestration field for field.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <sstream>
#include <stdexcept>

#include "harness/experiments.hh"
#include "obs/stats.hh"
#include "pipeline/taskgraph.hh"
#include "sim/report.hh"
#include "sim/study.hh"
#include "test_support.hh"
#include "util/json.hh"
#include "util/threadpool.hh"

using namespace xbsp;
using pipeline::NodeId;
using pipeline::NodeStatus;
using pipeline::TaskGraph;

namespace
{

u64
counterValue(const std::string& path)
{
    return obs::StatRegistry::global().counterValue(path);
}

/** No-op work body for structure-only tests. */
std::function<void()>
noop()
{
    return [] {};
}

} // namespace

TEST(TaskGraph, DependentsRunAfterDependencies)
{
    setGlobalJobs(4);
    TaskGraph graph;
    std::atomic<int> clock{0};
    std::array<int, 4> finished{};
    auto stamp = [&](std::size_t slot) {
        return [&finished, &clock, slot] {
            finished[slot] = ++clock;
        };
    };
    // Diamond: 0 -> {1, 2} -> 3.
    const NodeId a = graph.add("a", "stage", {}, stamp(0));
    const NodeId b = graph.add("b", "stage", {a}, stamp(1));
    const NodeId c = graph.add("c", "stage", {a}, stamp(2));
    const NodeId d = graph.add("d", "stage", {b, c}, stamp(3));
    graph.run(globalPool());
    setGlobalJobs(0);

    EXPECT_LT(finished[0], finished[1]);
    EXPECT_LT(finished[0], finished[2]);
    EXPECT_LT(finished[1], finished[3]);
    EXPECT_LT(finished[2], finished[3]);
    EXPECT_EQ(graph.status(a), NodeStatus::Done);
    EXPECT_EQ(graph.status(d), NodeStatus::Done);
    EXPECT_EQ(graph.nodeCount(), 4u);
    EXPECT_EQ(graph.edgeCount(), 4u);
}

TEST(TaskGraph, SequentialExecutionIsLowestReadyIdFirst)
{
    setGlobalJobs(1); // no workers: nodes run inline in ready order
    TaskGraph graph;
    std::vector<NodeId> order;
    auto record = [&order](NodeId id) {
        return [&order, id] { order.push_back(id); };
    };
    // 0 and 2 start ready; 1 becomes ready once 0 settles.  The
    // scheduler must still pick lowest id first: 0, 1, 2.
    const NodeId a = graph.add("a", "s", {}, record(0));
    graph.add("b", "s", {a}, record(1));
    graph.add("c", "s", {}, record(2));
    graph.run(globalPool());
    setGlobalJobs(0);

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2}));
}

TEST(TaskGraph, CommitsAndResultsIdenticalAcrossJobCounts)
{
    auto runAt = [](u64 jobs, std::vector<std::string>& commits,
                    std::vector<u64>& results) {
        setGlobalJobs(jobs);
        TaskGraph graph;
        results.assign(8, 0);
        std::vector<NodeId> deps;
        for (std::size_t i = 0; i < 8; ++i) {
            // Fan-in chains: even nodes are roots, odd nodes depend
            // on all earlier even nodes.
            std::vector<NodeId> d = (i % 2 == 1) ? deps : std::vector<NodeId>{};
            std::string label = "n";
            label += std::to_string(i);
            const NodeId id = graph.add(
                std::move(label), "s", d,
                [&results, i] { results[i] = 1000u + 7u * i; });
            if (i % 2 == 0)
                deps.push_back(id);
            graph.setCommit(id, [&commits, i] {
                commits.push_back("commit-" + std::to_string(i));
            });
        }
        graph.run(globalPool());
        setGlobalJobs(0);
    };

    std::vector<std::string> commits1, commits8;
    std::vector<u64> results1, results8;
    runAt(1, commits1, results1);
    runAt(8, commits8, results8);

    ASSERT_EQ(commits1.size(), 8u);
    EXPECT_EQ(commits1, commits8);      // node-id order, always
    EXPECT_EQ(commits1.front(), "commit-0");
    EXPECT_EQ(commits1.back(), "commit-7");
    EXPECT_EQ(results1, results8);
}

TEST(TaskGraph, LowestIdFailureRethrownAndDependentsSkipped)
{
    setGlobalJobs(4);
    TaskGraph graph;
    bool committedOk = false, committedBad = false;
    const NodeId ok = graph.add("ok", "s", {}, noop());
    const NodeId bad1 = graph.add("bad1", "s", {}, [] {
        throw std::runtime_error("boom-first");
    });
    const NodeId bad2 = graph.add("bad2", "s", {}, [] {
        throw std::runtime_error("boom-second");
    });
    const NodeId child = graph.add("child", "s", {bad1}, noop());
    const NodeId grandchild = graph.add("grandchild", "s", {child},
                                        noop());
    const NodeId lone = graph.add("lone", "s", {ok}, noop());
    graph.setCommit(ok, [&committedOk] { committedOk = true; });
    graph.setCommit(bad1, [&committedBad] { committedBad = true; });

    try {
        graph.run(globalPool());
        FAIL() << "expected the failed node's exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom-first"); // lowest failed id wins
    }
    setGlobalJobs(0);

    EXPECT_EQ(graph.status(ok), NodeStatus::Done);
    EXPECT_EQ(graph.status(bad1), NodeStatus::Failed);
    EXPECT_EQ(graph.status(bad2), NodeStatus::Failed);
    EXPECT_EQ(graph.status(child), NodeStatus::Skipped);
    EXPECT_EQ(graph.status(grandchild), NodeStatus::Skipped);
    EXPECT_EQ(graph.status(lone), NodeStatus::Done); // unrelated runs
    EXPECT_TRUE(committedOk);   // healthy subgraph still commits
    EXPECT_FALSE(committedBad); // failed nodes never commit
}

TEST(TaskGraph, DependencyMustBeAddedFirstFatal)
{
    EXPECT_EXIT(
        {
            TaskGraph graph;
            graph.add("late", "s", {0}, noop());
        },
        ::testing::ExitedWithCode(1), "has not been added yet");
}

TEST(TaskGraph, ProbeHitRunsInlineAsCacheResolved)
{
    const u64 cached0 = counterValue("scheduler.nodes.cacheResolved");
    const u64 run0 = counterValue("scheduler.nodes.run");
    setGlobalJobs(4);
    TaskGraph graph;
    bool hitRan = false, missRan = false;
    const NodeId hit = graph.add("hit", "s", {},
                                 [&hitRan] { hitRan = true; });
    graph.setProbe(hit, [] { return true; });
    const NodeId miss = graph.add("miss", "s", {},
                                  [&missRan] { missRan = true; });
    graph.setProbe(miss, [] { return false; });
    graph.run(globalPool());
    setGlobalJobs(0);

    EXPECT_TRUE(hitRan); // probe only changes *where* work runs
    EXPECT_TRUE(missRan);
    EXPECT_EQ(graph.status(hit), NodeStatus::CacheResolved);
    EXPECT_EQ(graph.status(miss), NodeStatus::Done);
    EXPECT_EQ(counterValue("scheduler.nodes.cacheResolved"),
              cached0 + 1);
    EXPECT_EQ(counterValue("scheduler.nodes.run"), run0 + 1);
}

TEST(TaskGraph, CriticalPathIsLongestChain)
{
    TaskGraph graph;
    EXPECT_EQ(graph.criticalPathLength(), 0u);
    const NodeId a = graph.add("a", "s", {}, noop());
    const NodeId b = graph.add("b", "s", {a}, noop());
    graph.add("c", "s", {b}, noop());
    graph.add("d", "s", {}, noop());
    EXPECT_EQ(graph.criticalPathLength(), 3u);
    EXPECT_EQ(graph.nodeCount(), 4u);
    EXPECT_EQ(graph.edgeCount(), 2u);
}

TEST(TaskGraph, DumpsDescribeStructureAndStatus)
{
    setGlobalJobs(1);
    TaskGraph graph;
    const NodeId a = graph.add("alpha", "compile", {}, noop());
    graph.add("beta", "profile", {a}, noop());
    graph.run(globalPool());
    setGlobalJobs(0);

    std::ostringstream json;
    {
        JsonWriter w(json);
        graph.writeJson(w);
    }
    const std::string j = json.str();
    EXPECT_NE(j.find("\"nodes\""), std::string::npos);
    EXPECT_NE(j.find("\"alpha\""), std::string::npos);
    EXPECT_NE(j.find("\"compile\""), std::string::npos);
    EXPECT_NE(j.find("\"done\""), std::string::npos);
    EXPECT_NE(j.find("\"criticalPath\""), std::string::npos);

    std::ostringstream dot;
    graph.writeDot(dot);
    const std::string d = dot.str();
    EXPECT_NE(d.find("digraph"), std::string::npos);
    EXPECT_NE(d.find("->"), std::string::npos);
    EXPECT_NE(d.find("alpha"), std::string::npos);
}

// ---------------------------------------------------------------
// Study-level goldens: the graph-scheduled pipeline must reproduce
// the pre-refactor barrier orchestration exactly.
// ---------------------------------------------------------------

namespace
{

sim::StudyConfig
smallConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.simpoint.maxK = 10;
    return config;
}

std::string
statsOf(const sim::CrossBinaryStudy& study)
{
    std::ostringstream os;
    sim::dumpStudyStats(os, study);
    return os.str();
}

} // namespace

TEST(Pipeline, GraphStudyMatchesBarrierStudyFieldForField)
{
    const ir::Program program = test::tinyProgram();
    const sim::CrossBinaryStudy graph =
        sim::CrossBinaryStudy::run(program, smallConfig());
    const sim::CrossBinaryStudy barrier =
        sim::CrossBinaryStudy::runBarrier(program, smallConfig());

    EXPECT_EQ(statsOf(graph), statsOf(barrier));
    ASSERT_EQ(graph.perBinary().size(), barrier.perBinary().size());
    EXPECT_EQ(graph.partition().intervalCount(),
              barrier.partition().intervalCount());
    for (std::size_t b = 0; b < graph.perBinary().size(); ++b) {
        const auto& g = graph.perBinary()[b];
        const auto& m = barrier.perBinary()[b];
        EXPECT_EQ(g.totalInstrs, m.totalInstrs);
        EXPECT_EQ(g.detailedRun.totals.cycles,
                  m.detailedRun.totals.cycles);
        EXPECT_DOUBLE_EQ(g.fliEstimate.estCpi, m.fliEstimate.estCpi);
        EXPECT_DOUBLE_EQ(g.vliEstimate.estCpi, m.vliEstimate.estCpi);
        EXPECT_EQ(g.fliEstimate.phases.size(),
                  m.fliEstimate.phases.size());
        EXPECT_EQ(g.vliEstimate.phases.size(),
                  m.vliEstimate.phases.size());
    }
    EXPECT_DOUBLE_EQ(graph.trueSpeedup(0, 1),
                     barrier.trueSpeedup(0, 1));
    EXPECT_DOUBLE_EQ(
        graph.speedupError(sim::Method::MappableVli, 0, 2),
        barrier.speedupError(sim::Method::MappableVli, 0, 2));
}

TEST(Pipeline, SuiteDeterministicAcrossJobCounts)
{
    auto runSuite = [](u64 jobs, std::string& table,
                       std::vector<u64>& schedulerDeltas) {
        harness::ExperimentConfig config;
        config.workloads = {"gzip", "swim"};
        config.workScale = 0.15;
        config.study = harness::defaultStudyConfig();
        config.study.intervalTarget = 100000;
        config.verbose = false;

        const u64 ready0 = counterValue("scheduler.nodes.ready");
        const u64 run0 = counterValue("scheduler.nodes.run");
        const u64 cached0 =
            counterValue("scheduler.nodes.cacheResolved");
        const u64 edges0 = counterValue("scheduler.edges");
        setGlobalJobs(jobs);
        harness::ExperimentSuite suite(config);
        std::ostringstream os;
        suite.figure3().print(os);
        table = os.str();
        setGlobalJobs(0);
        schedulerDeltas = {
            counterValue("scheduler.nodes.ready") - ready0,
            counterValue("scheduler.nodes.run") - run0,
            counterValue("scheduler.nodes.cacheResolved") - cached0,
            counterValue("scheduler.edges") - edges0,
        };
    };

    std::string table1, table8;
    std::vector<u64> deltas1, deltas8;
    runSuite(1, table1, deltas1);
    runSuite(8, table8, deltas8);

    EXPECT_EQ(table1, table8);
    EXPECT_EQ(deltas1, deltas8); // scheduling stats jobs-independent
    EXPECT_GT(deltas1[0], 0u);   // some nodes actually ran
}
