/**
 * @file
 * Threading-model tests: ThreadPool/parallelFor unit behaviour
 * (exception propagation, empty ranges, nested submission) and the
 * headline guarantee of the parallel pipeline — a CrossBinaryStudy
 * run with N worker threads is bit-identical to a run with 1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/study.hh"
#include "test_support.hh"
#include "util/threadpool.hh"

using namespace xbsp;

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    auto future = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, InlinePoolHasNoWorkers)
{
    ThreadPool zero(0);
    ThreadPool one(1);
    EXPECT_EQ(zero.size(), 0u);
    EXPECT_EQ(one.size(), 0u);
    EXPECT_EQ(zero.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    // Each outer task submits (and waits on) an inner task.  With a
    // queueing implementation this deadlocks once every worker blocks
    // on an inner task stuck behind it in the queue; the pool instead
    // runs nested submissions inline on the calling worker.
    std::vector<std::future<int>> outers;
    for (int i = 0; i < 8; ++i) {
        outers.push_back(pool.submit([&pool, i] {
            EXPECT_TRUE(pool.onWorkerThread());
            return pool.submit([i] { return i * i; }).get();
        }));
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(outers[i].get(), i * i);
}

TEST(ParallelFor, EmptyRangeNeverInvokes)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallelFor(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(pool, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, PropagatesLowestIndexedException)
{
    ThreadPool pool(4);
    // Two chunks throw; the lowest-indexed chunk's exception must win
    // regardless of completion order.  With 1000 items and 64 chunks,
    // index 200 lands in an earlier chunk than index 900.
    try {
        parallelFor(globalPool(), 1000, [&](std::size_t i) {
            if (i == 200)
                throw std::runtime_error("early");
            if (i == 900)
                throw std::logic_error("late");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "early");
    }
}

TEST(ParallelFor, NestedUseRunsInline)
{
    ThreadPool pool(2);
    std::vector<int> out(16, 0);
    parallelFor(pool, 4, [&](std::size_t outer) {
        // Inner loops issued from a worker run serially inline; they
        // must still cover their range.
        parallelFor(pool, 4, [&](std::size_t inner) {
            out[outer * 4 + inner] = static_cast<int>(outer * 4 + inner);
        });
    });
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(ParallelChunks, ChunkingDependsOnSizeOnly)
{
    // The chunk count is a pure function of n — this is what makes
    // chunk-ordered reductions independent of the worker count.
    EXPECT_EQ(parallelChunkCount(0), 0u);
    EXPECT_EQ(parallelChunkCount(1), 1u);
    EXPECT_EQ(parallelChunkCount(5), 5u);
    EXPECT_EQ(parallelChunkCount(1 << 20), parallelChunkCount(1 << 20));

    ThreadPool wide(8);
    ThreadPool narrow(0);
    auto boundaries = [](ThreadPool& pool, std::size_t n) {
        std::vector<std::pair<std::size_t, std::size_t>> out(
            parallelChunkCount(n));
        parallelChunks(pool, n,
                       [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
                           out[chunk] = {begin, end};
                       });
        return out;
    };
    EXPECT_EQ(boundaries(wide, 1000), boundaries(narrow, 1000));
}

namespace
{

sim::StudyConfig
smallConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.simpoint.maxK = 10;
    return config;
}

/** Exact per-metric equality of two studies of the same program. */
void
expectIdenticalStudies(const sim::CrossBinaryStudy& a,
                       const sim::CrossBinaryStudy& b)
{
    ASSERT_EQ(a.perBinary().size(), b.perBinary().size());
    EXPECT_EQ(a.partition().intervalCount(),
              b.partition().intervalCount());
    EXPECT_EQ(a.mappable().points.size(), b.mappable().points.size());
    EXPECT_EQ(a.vliClustering().k, b.vliClustering().k);
    EXPECT_EQ(a.vliClustering().labels, b.vliClustering().labels);

    for (const sim::Method method :
         {sim::Method::PerBinaryFli, sim::Method::MappableVli}) {
        EXPECT_EQ(a.avgSimPointCount(method),
                  b.avgSimPointCount(method));
        EXPECT_EQ(a.avgIntervalSize(method), b.avgIntervalSize(method));
        EXPECT_EQ(a.avgCpiError(method), b.avgCpiError(method));
        for (const auto& pairs :
             {sim::samePlatformPairs(), sim::crossPlatformPairs()}) {
            for (const auto& pair : pairs) {
                EXPECT_EQ(a.speedupError(method, pair.a, pair.b),
                          b.speedupError(method, pair.a, pair.b))
                    << methodName(method) << " " << pair.label;
            }
        }
    }

    for (std::size_t i = 0; i < a.perBinary().size(); ++i) {
        const sim::BinaryStudy& bsA = a.perBinary()[i];
        const sim::BinaryStudy& bsB = b.perBinary()[i];
        EXPECT_EQ(bsA.totalInstrs, bsB.totalInstrs);
        EXPECT_EQ(bsA.fliIntervalCount, bsB.fliIntervalCount);
        EXPECT_EQ(bsA.fliBoundaries, bsB.fliBoundaries);
        EXPECT_EQ(bsA.fliClustering.k, bsB.fliClustering.k);
        EXPECT_EQ(bsA.fliClustering.labels, bsB.fliClustering.labels);
        EXPECT_EQ(bsA.fliEstimate.cpiError, bsB.fliEstimate.cpiError);
        EXPECT_EQ(bsA.vliEstimate.cpiError, bsB.vliEstimate.cpiError);
        EXPECT_EQ(bsA.fliEstimate.trueCycles,
                  bsB.fliEstimate.trueCycles);
        EXPECT_EQ(bsA.fliEstimate.estCycles, bsB.fliEstimate.estCycles);
        EXPECT_EQ(bsA.vliEstimate.trueCycles,
                  bsB.vliEstimate.trueCycles);
        EXPECT_EQ(bsA.vliEstimate.estCycles, bsB.vliEstimate.estCycles);
    }
}

} // namespace

/**
 * The headline determinism guarantee: the whole pipeline — profiling,
 * clustering (including the parallel k-means E-step), detailed runs
 * and estimates — is bit-identical with 1 worker and with several.
 */
TEST(ParallelStudy, OneVsManyThreadsBitIdentical)
{
    const ir::Program program = test::tinyProgram();
    const sim::StudyConfig config = smallConfig();

    setGlobalJobs(1);
    const sim::CrossBinaryStudy serial =
        sim::CrossBinaryStudy::run(program, config);

    setGlobalJobs(4);
    const sim::CrossBinaryStudy parallel =
        sim::CrossBinaryStudy::run(program, config);

    setGlobalJobs(0); // back to automatic for other tests
    expectIdenticalStudies(serial, parallel);
}
