/**
 * @file
 * Unit tests for the SimPoint machinery: frequency vectors, random
 * projection, weighted k-means, BIC and the end-to-end picker.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "simpoint/simpoint.hh"

using namespace xbsp;
using namespace xbsp::sp;

namespace
{

/**
 * Synthetic interval set with `k` well-separated ground-truth
 * behaviours in a `dim`-dimensional space; cluster c uses dimensions
 * [c*8, c*8+4) with cluster-specific magnitudes plus small noise.
 */
FrequencyVectorSet
syntheticClusters(u32 k, std::size_t perCluster, u64 seed = 5,
                  InstrCount length = 1000)
{
    Rng rng(seed);
    FrequencyVectorSet fvs;
    fvs.dimension = k * 8 + 8;
    for (std::size_t i = 0; i < perCluster * k; ++i) {
        const u32 c = static_cast<u32>(i % k);
        SparseVec vec;
        for (u32 d = 0; d < 4; ++d) {
            vec.emplace_back(c * 8 + d,
                             100.0 * (d + 1) +
                                 rng.nextDouble(-2.0, 2.0));
        }
        fvs.addInterval(std::move(vec), length);
    }
    return fvs;
}

/** Ground-truth label of interval i in syntheticClusters. */
u32
truthLabel(std::size_t i, u32 k)
{
    return static_cast<u32>(i % k);
}

/** Fraction of pairs whose same/different-cluster relation matches. */
double
pairAgreement(const std::vector<u32>& labels, u32 k)
{
    std::size_t agree = 0, total = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        for (std::size_t j = i + 1; j < labels.size(); ++j) {
            const bool sameTruth =
                truthLabel(i, k) == truthLabel(j, k);
            const bool sameFound = labels[i] == labels[j];
            agree += sameTruth == sameFound ? 1 : 0;
            ++total;
        }
    }
    return static_cast<double>(agree) / static_cast<double>(total);
}

} // namespace

TEST(Fvec, NormalizeMakesVectorsSumToOne)
{
    FrequencyVectorSet fvs = syntheticClusters(3, 5);
    fvs.normalize();
    for (const auto& vec : fvs.vectors)
        EXPECT_NEAR(sparseSum(vec), 1.0, 1e-12);
}

TEST(Fvec, TotalInstructions)
{
    FrequencyVectorSet fvs = syntheticClusters(2, 3, 5, 700);
    EXPECT_EQ(fvs.totalInstructions(), 6u * 700u);
}

TEST(Fvec, RejectsUnsortedIndices)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 10;
    SparseVec bad{{5, 1.0}, {3, 1.0}};
    EXPECT_DEATH(fvs.addInterval(bad, 1), "strictly rising");
}

TEST(Fvec, RejectsOutOfRangeIndex)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 4;
    SparseVec bad{{7, 1.0}};
    EXPECT_DEATH(fvs.addInterval(bad, 1), "exceeds dimension");
}

TEST(Fvec, DedupGroupsEqualVectors)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 8;
    for (int rep = 0; rep < 3; ++rep) {
        fvs.addInterval(SparseVec{{0, 1.0}, {3, 2.0}}, 100);
        fvs.addInterval(SparseVec{{1, 5.0}}, 200);
    }
    fvs.addInterval(SparseVec{{0, 1.0}, {3, 2.5}}, 300);
    const DedupMap map = fvs.dedup();
    EXPECT_EQ(map.classes(), 3u);
    EXPECT_EQ(map.classOf,
              (std::vector<u32>{0, 1, 0, 1, 0, 1, 2}));
    EXPECT_EQ(map.firstOf, (std::vector<u32>{0, 1, 6}));
    EXPECT_EQ(map.classLength,
              (std::vector<InstrCount>{300, 600, 300}));
}

TEST(Fvec, DedupQuantumMergesNearEqualVectors)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 4;
    fvs.addInterval(SparseVec{{0, 1.000}}, 10);
    fvs.addInterval(SparseVec{{0, 1.004}}, 10); // same 0.01 bucket
    fvs.addInterval(SparseVec{{0, 1.200}}, 10); // different bucket
    EXPECT_EQ(fvs.dedup().classes(), 3u);
    EXPECT_EQ(fvs.dedup(0.01).classes(), 2u);
}

TEST(Projection, ShapeAndDeterminism)
{
    FrequencyVectorSet fvs = syntheticClusters(3, 10);
    fvs.normalize();
    const ProjectedData a = project(fvs, 15, 42);
    const ProjectedData b = project(fvs, 15, 42);
    const ProjectedData c = project(fvs, 15, 43);
    EXPECT_EQ(a.dims, 15u);
    EXPECT_EQ(a.count, 30u);
    EXPECT_EQ(a.points, b.points);
    EXPECT_NE(a.points, c.points);
}

TEST(Projection, WeightsSumToPointCount)
{
    FrequencyVectorSet fvs = syntheticClusters(2, 10, 5, 500);
    fvs.lengths[0] = 5000; // one long interval
    const ProjectedData data = project(fvs, 8, 1);
    double sum = 0.0;
    for (double w : data.weights)
        sum += w;
    EXPECT_NEAR(sum, static_cast<double>(data.count), 1e-9);
    EXPECT_GT(data.weights[0], data.weights[1]);
}

TEST(Projection, PreservesClusterSeparation)
{
    // After projection, same-truth-cluster points must stay closer
    // than different-cluster points on average.
    FrequencyVectorSet fvs = syntheticClusters(4, 10);
    fvs.normalize();
    const ProjectedData data = project(fvs, 15, 7);
    double same = 0.0, diff = 0.0;
    std::size_t nSame = 0, nDiff = 0;
    for (std::size_t i = 0; i < data.count; ++i) {
        for (std::size_t j = i + 1; j < data.count; ++j) {
            const double d = sqDist(data.point(i), data.point(j));
            if (truthLabel(i, 4) == truthLabel(j, 4)) {
                same += d;
                ++nSame;
            } else {
                diff += d;
                ++nDiff;
            }
        }
    }
    EXPECT_LT(same / nSame, 0.05 * (diff / nDiff));
}

TEST(KMeans, RecoversWellSeparatedClusters)
{
    FrequencyVectorSet fvs = syntheticClusters(4, 12);
    fvs.normalize();
    const ProjectedData data = project(fvs, 15, 11);
    Rng rng(3);
    const KMeansResult result = runKMeans(data, 4, rng);
    EXPECT_EQ(result.k, 4u);
    EXPECT_GT(pairAgreement(result.labels, 4), 0.999);
    EXPECT_TRUE(result.converged);
}

TEST(KMeans, BothInitMethodsWork)
{
    FrequencyVectorSet fvs = syntheticClusters(3, 10);
    fvs.normalize();
    const ProjectedData data = project(fvs, 10, 13);
    for (InitMethod init :
         {InitMethod::KMeansPlusPlus, InitMethod::RandomPartition}) {
        Rng rng(5);
        KMeansOptions options;
        options.init = init;
        const KMeansResult result = runKMeans(data, 3, rng, options);
        EXPECT_GT(pairAgreement(result.labels, 3), 0.99)
            << "init " << static_cast<int>(init);
    }
}

TEST(KMeans, KClampedToPointCount)
{
    FrequencyVectorSet fvs = syntheticClusters(2, 2); // 4 points
    fvs.normalize();
    const ProjectedData data = project(fvs, 4, 1);
    Rng rng(1);
    const KMeansResult result = runKMeans(data, 10, rng);
    EXPECT_EQ(result.k, 4u);
}

TEST(KMeans, SseDecreasesWithK)
{
    FrequencyVectorSet fvs = syntheticClusters(5, 10);
    fvs.normalize();
    const ProjectedData data = project(fvs, 15, 17);
    double prev = std::numeric_limits<double>::max();
    for (u32 k : {1u, 2u, 5u}) {
        Rng rng(9);
        const KMeansResult result = runKMeans(data, k, rng);
        EXPECT_LE(result.weightedSse, prev + 1e-9);
        prev = result.weightedSse;
    }
}

TEST(KMeans, WeightsPullCentroids)
{
    // Two points; the heavy one dominates a single centroid.
    ProjectedData data;
    data.dims = 1;
    data.count = 2;
    data.points = {0.0, 1.0};
    data.weights = {1.8, 0.2};
    Rng rng(1);
    const KMeansResult result = runKMeans(data, 1, rng);
    EXPECT_NEAR(result.centroids[0], 0.1, 1e-9);
    EXPECT_NEAR(result.clusterWeight[0], 2.0, 1e-9);
}

TEST(Bic, PrefersTrueK)
{
    FrequencyVectorSet fvs = syntheticClusters(4, 15);
    fvs.normalize();
    const ProjectedData data = project(fvs, 15, 21);
    std::vector<double> scores;
    for (u32 k = 1; k <= 8; ++k) {
        Rng rng(7);
        scores.push_back(bicScore(data, runKMeans(data, k, rng)));
    }
    // The best score occurs at k >= 4 and k=4 is far better than
    // k=1..3 (splitting true clusters beyond 4 gains little).
    std::size_t best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[best])
            best = i;
    }
    EXPECT_GE(best + 1, 4u);
    EXPECT_GT(scores[3], scores[0]);
    EXPECT_GT(scores[3], scores[1]);
    EXPECT_GT(scores[3], scores[2]);
}

TEST(Bic, NormalizeMapsToUnitRange)
{
    const std::vector<double> norm =
        normalizeBic({-10.0, 0.0, 30.0, 10.0});
    EXPECT_DOUBLE_EQ(norm[0], 0.0);
    EXPECT_DOUBLE_EQ(norm[2], 1.0);
    EXPECT_NEAR(norm[1], 0.25, 1e-12);
    const std::vector<double> flat = normalizeBic({3.0, 3.0});
    EXPECT_DOUBLE_EQ(flat[0], 1.0);
    EXPECT_DOUBLE_EQ(flat[1], 1.0);
}

TEST(SimPointPick, FindsPhasesAndWeights)
{
    FrequencyVectorSet fvs = syntheticClusters(4, 20);
    SimPointOptions options;
    options.maxK = 10;
    const SimPointResult result = pickSimulationPoints(fvs, options);

    EXPECT_GE(result.k, 4u);
    EXPECT_EQ(result.labels.size(), fvs.size());
    EXPECT_EQ(result.bicByK.size(), 10u);

    double totalWeight = 0.0;
    for (const Phase& phase : result.phases) {
        totalWeight += phase.weight;
        // Representative is a member carrying the phase's label.
        EXPECT_EQ(result.labels[phase.representative], phase.id);
        bool found = false;
        for (u32 member : phase.members)
            found |= member == phase.representative;
        EXPECT_TRUE(found);
        // Members all share the label and are ascending.
        for (std::size_t m = 0; m < phase.members.size(); ++m) {
            EXPECT_EQ(result.labels[phase.members[m]], phase.id);
            if (m > 0) {
                EXPECT_GT(phase.members[m], phase.members[m - 1]);
            }
        }
    }
    EXPECT_NEAR(totalWeight, 1.0, 1e-9);
}

TEST(SimPointPick, WeightsFollowInstructionLengths)
{
    // Two behaviours; behaviour 0 intervals are 3x as long.
    FrequencyVectorSet fvs = syntheticClusters(2, 20);
    for (std::size_t i = 0; i < fvs.size(); ++i)
        fvs.lengths[i] = (i % 2 == 0) ? 3000 : 1000;
    SimPointOptions options;
    options.maxK = 4;
    const SimPointResult result = pickSimulationPoints(fvs, options);
    for (const Phase& phase : result.phases) {
        const u32 truth = truthLabel(phase.members[0], 2);
        if (result.k == 2) {
            EXPECT_NEAR(phase.weight, truth == 0 ? 0.75 : 0.25,
                        0.01);
        }
    }
}

TEST(SimPointPick, DeterministicBySeed)
{
    FrequencyVectorSet fvs = syntheticClusters(3, 15);
    SimPointOptions options;
    const SimPointResult a = pickSimulationPoints(fvs, options);
    const SimPointResult b = pickSimulationPoints(fvs, options);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(SimPointPick, SingleIntervalDegenerate)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 4;
    fvs.addInterval(SparseVec{{0, 5.0}}, 1000);
    SimPointOptions options;
    const SimPointResult result = pickSimulationPoints(fvs, options);
    EXPECT_EQ(result.k, 1u);
    ASSERT_EQ(result.phases.size(), 1u);
    EXPECT_EQ(result.phases[0].representative, 0u);
    EXPECT_DOUBLE_EQ(result.phases[0].weight, 1.0);
}

TEST(SimPointPick, AllIdenticalIntervalsCollapseToOnePhase)
{
    // Every interval carries the same vector: BIC must settle on a
    // single phase covering everything, under both clustering paths.
    for (const bool accelerate : {false, true}) {
        FrequencyVectorSet fvs;
        fvs.dimension = 8;
        for (int i = 0; i < 25; ++i)
            fvs.addInterval(SparseVec{{1, 3.0}, {4, 9.0}}, 1000);
        SimPointOptions options;
        options.accelerate = accelerate;
        const SimPointResult result =
            pickSimulationPoints(fvs, options);
        EXPECT_EQ(result.k, 1u) << "accelerate " << accelerate;
        ASSERT_EQ(result.phases.size(), 1u);
        EXPECT_DOUBLE_EQ(result.phases[0].weight, 1.0);
        EXPECT_EQ(result.phases[0].members.size(), 25u);
    }
}

TEST(SimPointPick, FewerIntervalsThanMaxK)
{
    // n < maxK (and n < default k range): k must clamp, every
    // interval must be labelled, and weights must sum to 1.
    FrequencyVectorSet fvs = syntheticClusters(3, 1); // 3 intervals
    SimPointOptions options;
    options.maxK = 10;
    const SimPointResult result = pickSimulationPoints(fvs, options);
    EXPECT_LE(result.k, 3u);
    EXPECT_EQ(result.labels.size(), 3u);
    double total = 0.0;
    for (const Phase& phase : result.phases)
        total += phase.weight;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SimPointPick, ZeroLengthIntervalsFallBackToCountWeights)
{
    // All lengths zero: instruction weighting is undefined, so the
    // phase weights fall back to interval counts (still summing to
    // 1) instead of collapsing to 0.
    FrequencyVectorSet fvs;
    fvs.dimension = 8;
    for (int i = 0; i < 10; ++i)
        fvs.addInterval(SparseVec{{2, 4.0}}, 0);
    SimPointOptions options;
    const SimPointResult result = pickSimulationPoints(fvs, options);
    ASSERT_EQ(result.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(result.phases[0].weight, 1.0);

    FrequencyVectorSet mixed = syntheticClusters(2, 8);
    for (std::size_t i = 0; i < mixed.size(); ++i)
        mixed.lengths[i] = 0;
    const SimPointResult multi = pickSimulationPoints(mixed, options);
    double total = 0.0;
    for (const Phase& phase : multi.phases)
        total += phase.weight;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SimPointPick, EmptyInputFatal)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 4;
    SimPointOptions options;
    EXPECT_EXIT((void)pickSimulationPoints(fvs, options),
                ::testing::ExitedWithCode(1), "no intervals");
}

TEST(SimPointPick, MaxKCapsPhaseCount)
{
    FrequencyVectorSet fvs = syntheticClusters(6, 10);
    SimPointOptions options;
    options.maxK = 3;
    const SimPointResult result = pickSimulationPoints(fvs, options);
    EXPECT_LE(result.phases.size(), 3u);
}

TEST(SimPointPick, EarlyPointsPickEarlierRepresentatives)
{
    // With many near-identical intervals per behaviour, the early
    // option must choose representatives no later than the default's
    // median picks.
    FrequencyVectorSet fvs = syntheticClusters(3, 30, 8);
    SimPointOptions central;
    central.maxK = 5;
    SimPointOptions early = central;
    early.earlyPoints = true;

    const SimPointResult c = pickSimulationPoints(fvs, central);
    const SimPointResult e = pickSimulationPoints(fvs, early);
    ASSERT_EQ(c.phases.size(), e.phases.size());
    u64 centralSum = 0, earlySum = 0;
    for (std::size_t p = 0; p < c.phases.size(); ++p) {
        centralSum += c.phases[p].representative;
        earlySum += e.phases[p].representative;
    }
    EXPECT_LT(earlySum, centralSum);
}
