/**
 * @file
 * The pluggable CPU-backend layer: kind parsing/selection, the
 * decoupled-frontend model's counters, the determinism contract
 * (identical stats under both run loops and at any job count), config
 * validation, and the serial codecs that carry CoreConfig/CoreStats
 * through store keys and the dist wire.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cpu/decoupled.hh"
#include "cpu/inorder.hh"
#include "cpu/serial.hh"
#include "exec/engine.hh"
#include "sim/study.hh"
#include "test_support.hh"
#include "util/threadpool.hh"

using namespace xbsp;

namespace
{

/** Run one binary start-to-finish under the given core and engine. */
cpu::CoreStats
runWith(const bin::Binary& binary, const cpu::CoreConfig& config,
        exec::EngineMode mode)
{
    cache::Hierarchy hierarchy;
    const std::unique_ptr<cpu::Core> core =
        cpu::makeCore(config, hierarchy);
    exec::Engine engine(binary, 0x5EEDull, mode);
    engine.addObserver(core.get(), core->hooks());
    engine.run();
    return core->totals();
}

const bin::Binary&
tinyBinary()
{
    static const std::vector<bin::Binary> binaries =
        test::compileFour(test::tinyProgram());
    return binaries[0];
}

} // namespace

TEST(CoreKind, NamesRoundTrip)
{
    for (const cpu::CoreKind kind :
         {cpu::CoreKind::InOrder, cpu::CoreKind::Decoupled}) {
        const auto parsed =
            cpu::parseCoreKind(cpu::coreKindName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_EQ(cpu::parseCoreKind("in-order"),
              cpu::CoreKind::InOrder);
    EXPECT_FALSE(cpu::parseCoreKind("bogus").has_value());
    EXPECT_FALSE(cpu::parseCoreKind("").has_value());
}

TEST(CoreKind, SelectRejectsUnknownNames)
{
    const cpu::CoreKind before = cpu::activeCoreKind();
    EXPECT_FALSE(cpu::selectCore("out-of-order"));
    EXPECT_EQ(cpu::activeCoreKind(), before);
    EXPECT_TRUE(cpu::selectCore("decoupled"));
    EXPECT_EQ(cpu::activeCoreKind(), cpu::CoreKind::Decoupled);
    EXPECT_EQ(cpu::defaultCoreConfig().kind,
              cpu::CoreKind::Decoupled);
    ASSERT_TRUE(cpu::selectCore(cpu::coreKindName(before)));
    EXPECT_EQ(cpu::activeCoreKind(), before);
}

TEST(CoreConfig, DefaultIsTheByteIdenticalInOrderModel)
{
    // The default-constructed config must stay the in-order model:
    // every pre-refactor report's store key depends on it.
    const cpu::CoreConfig config;
    EXPECT_EQ(config.kind, cpu::CoreKind::InOrder);
    EXPECT_EQ(config, cpu::coreConfigFor(cpu::CoreKind::InOrder));
}

TEST(InOrderCore, MatchesFrozenTimingMath)
{
    // instructions == cycles when there is no memory traffic, and
    // the frontend counters stay zero: the seed model, unchanged.
    const cpu::CoreStats stats = runWith(
        tinyBinary(), cpu::coreConfigFor(cpu::CoreKind::InOrder),
        exec::EngineMode::Interp);
    EXPECT_GT(stats.instructions, 0u);
    EXPECT_GE(stats.cycles, stats.instructions);
    EXPECT_GT(stats.memRefs, 0u);
    EXPECT_EQ(stats.branches, 0u);
    EXPECT_EQ(stats.mispredicts, 0u);
    EXPECT_EQ(stats.flushes, 0u);
    EXPECT_EQ(stats.fetchBubbles, 0u);
}

TEST(DecoupledCore, LoopyProgramTrainsThePredictor)
{
    const cpu::CoreStats stats = runWith(
        tinyBinary(), cpu::coreConfigFor(cpu::CoreKind::Decoupled),
        exec::EngineMode::Interp);
    EXPECT_GT(stats.branches, 0u);
    EXPECT_GT(stats.mispredicts, 0u);
    // Loops dominate the tiny program: the steady-state iterations
    // must predict correctly, so mispredicts are a strict minority.
    EXPECT_LT(stats.mispredicts, stats.branches / 2);
    // Every flush discards FTQ contents; a flush without a
    // mispredict is impossible.
    EXPECT_LE(stats.flushes, stats.mispredicts);
    // Post-flush refill starves the backend at least once.
    EXPECT_GT(stats.fetchBubbles, 0u);
}

TEST(DecoupledCore, FrontendOnlyAddsCycles)
{
    const cpu::CoreStats inorder = runWith(
        tinyBinary(), cpu::coreConfigFor(cpu::CoreKind::InOrder),
        exec::EngineMode::Interp);
    const cpu::CoreStats decoupled = runWith(
        tinyBinary(), cpu::coreConfigFor(cpu::CoreKind::Decoupled),
        exec::EngineMode::Interp);
    // Same committed work and memory traffic; the decoupled frontend
    // can only add stall cycles on top of the in-order baseline.
    EXPECT_EQ(decoupled.instructions, inorder.instructions);
    EXPECT_EQ(decoupled.memRefs, inorder.memRefs);
    EXPECT_GE(decoupled.cycles, inorder.cycles);
}

TEST(DecoupledCore, ByteIdenticalAcrossRunLoops)
{
    for (const cpu::CoreKind kind :
         {cpu::CoreKind::InOrder, cpu::CoreKind::Decoupled}) {
        const cpu::CoreConfig config = cpu::coreConfigFor(kind);
        const cpu::CoreStats interp =
            runWith(tinyBinary(), config, exec::EngineMode::Interp);
        const cpu::CoreStats compiled =
            runWith(tinyBinary(), config, exec::EngineMode::Compiled);
        EXPECT_EQ(interp, compiled)
            << "core " << cpu::coreKindName(kind);
    }
}

TEST(DecoupledCore, ByteIdenticalAcrossJobCounts)
{
    // The full pipeline (profile, cluster, detailed runs, region
    // replays) under the decoupled core at 1 and 8 jobs: timing is a
    // pure function of the event stream, so every counter agrees.
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.core = cpu::coreConfigFor(cpu::CoreKind::Decoupled);

    const unsigned saved = configuredJobs();
    setGlobalJobs(1);
    const sim::CrossBinaryStudy serial =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    setGlobalJobs(8);
    const sim::CrossBinaryStudy parallel =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    setGlobalJobs(saved);

    ASSERT_EQ(serial.perBinary().size(), parallel.perBinary().size());
    for (std::size_t b = 0; b < serial.perBinary().size(); ++b) {
        const sim::BinaryStudy& a = serial.perBinary()[b];
        const sim::BinaryStudy& c = parallel.perBinary()[b];
        EXPECT_EQ(a.detailedRun.totals, c.detailedRun.totals)
            << "binary " << b;
        EXPECT_EQ(a.fliEstimate.estCpi, c.fliEstimate.estCpi);
        EXPECT_EQ(a.vliEstimate.estCpi, c.vliEstimate.estCpi);
    }
}

TEST(DecoupledCore, MispredictPenaltyIsVisibleInCycles)
{
    cpu::CoreConfig cheap = cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    cheap.mispredictPenalty = 1;
    cpu::CoreConfig dear = cheap;
    dear.mispredictPenalty = 40;
    const cpu::CoreStats a =
        runWith(tinyBinary(), cheap, exec::EngineMode::Compiled);
    const cpu::CoreStats b =
        runWith(tinyBinary(), dear, exec::EngineMode::Compiled);
    // Identical prediction behaviour, dearer redirects.
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_GT(b.cycles, a.cycles);
}

TEST(DecoupledCore, ResetCountersZeroesStats)
{
    cache::Hierarchy hierarchy;
    cpu::DecoupledCore core(
        hierarchy, cpu::coreConfigFor(cpu::CoreKind::Decoupled));
    core.onBlock(1, 10);
    core.onBlock(2, 10);
    EXPECT_GT(core.totals().instructions, 0u);
    core.resetCounters();
    EXPECT_EQ(core.totals(), cpu::CoreStats{});
}

TEST(DecoupledCore, ConfigValidationIsFatal)
{
    cache::Hierarchy hierarchy;
    cpu::CoreConfig config =
        cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    config.fetchWidth = 0;
    EXPECT_EXIT((void)cpu::DecoupledCore(hierarchy, config),
                ::testing::ExitedWithCode(1), "fetchWidth");
    config = cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    config.ftqDepth = 5000;
    EXPECT_EXIT((void)cpu::DecoupledCore(hierarchy, config),
                ::testing::ExitedWithCode(1), "ftqDepth");
    config = cpu::coreConfigFor(cpu::CoreKind::Decoupled);
    config.predictorBits = 32;
    EXPECT_EXIT((void)cpu::DecoupledCore(hierarchy, config),
                ::testing::ExitedWithCode(1), "predictorBits");
}

TEST(CpuSerial, CoreConfigRoundTrips)
{
    cpu::CoreConfig config;
    config.kind = cpu::CoreKind::Decoupled;
    config.fetchWidth = 8;
    config.ftqDepth = 32;
    config.predictorBits = 10;
    config.mispredictPenalty = 7;

    serial::Encoder e;
    cpu::encodeCoreConfig(e, config);
    const std::string bytes = e.take();
    serial::Decoder d(bytes);
    const cpu::CoreConfig back = cpu::decodeCoreConfig(d);
    d.expectEnd();
    EXPECT_EQ(back, config);
}

TEST(CpuSerial, CoreStatsRoundTrip)
{
    const cpu::CoreStats stats = runWith(
        tinyBinary(), cpu::coreConfigFor(cpu::CoreKind::Decoupled),
        exec::EngineMode::Compiled);
    serial::Encoder e;
    cpu::encodeCoreStats(e, stats);
    const std::string bytes = e.take();
    serial::Decoder d(bytes);
    const cpu::CoreStats back = cpu::decodeCoreStats(d);
    d.expectEnd();
    EXPECT_EQ(back, stats);
}

TEST(CpuSerial, EveryConfigFieldChangesTheHash)
{
    const auto digest = [](const cpu::CoreConfig& config) {
        serial::Hasher h;
        cpu::hashCoreConfig(h, config);
        return h.finish();
    };
    const cpu::CoreConfig base;
    cpu::CoreConfig changed = base;
    changed.kind = cpu::CoreKind::Decoupled;
    EXPECT_NE(digest(base), digest(changed));
    changed = base;
    changed.fetchWidth = 2;
    EXPECT_NE(digest(base), digest(changed));
    changed = base;
    changed.ftqDepth = 8;
    EXPECT_NE(digest(base), digest(changed));
    changed = base;
    changed.predictorBits = 6;
    EXPECT_NE(digest(base), digest(changed));
    changed = base;
    changed.mispredictPenalty = 3;
    EXPECT_NE(digest(base), digest(changed));
}
