/**
 * @file
 * Integration tests: standalone region simulation must agree exactly
 * with the snapshot-gated statistics of a full detailed run (warm
 * sampling), and cold sampling must differ in the expected direction.
 * Region replay consumes the same DetailedRunRequest a full run does,
 * so every test exercises the one request-construction path under
 * both timing cores.
 */

#include <gtest/gtest.h>

#include "core/vli.hh"
#include "sim/detailed.hh"
#include "sim/region.hh"
#include "test_support.hh"

using namespace xbsp;

namespace
{

struct Fixture
{
    std::vector<bin::Binary> binaries;
    std::vector<prof::ProfilePass> passes;
    core::MappableSet set;
    core::VliBuild build;

    explicit Fixture(InstrCount target)
    {
        binaries = test::compileFour(test::tinyProgram());
        for (const auto& binary : binaries)
            passes.push_back(prof::runProfilePass(binary, target));
        std::vector<const bin::Binary*> bins;
        std::vector<const prof::MarkerProfile*> profs;
        for (std::size_t i = 0; i < binaries.size(); ++i) {
            bins.push_back(&binaries[i]);
            profs.push_back(&passes[i].markers);
        }
        set = core::findMappablePoints(bins, profs);
        build = core::buildVliPartition(binaries[0], set, 0, target);
    }

    sim::DetailedRunRequest fliRequest(std::size_t binaryIdx,
                                       cpu::CoreKind kind) const
    {
        sim::DetailedRunRequest request;
        request.fliBoundaries = passes[binaryIdx].fliBoundaries;
        request.core = cpu::coreConfigFor(kind);
        return request;
    }

    sim::DetailedRunRequest vliRequest(std::size_t binaryIdx,
                                       cpu::CoreKind kind) const
    {
        sim::DetailedRunRequest request;
        request.mappable = &set;
        request.binaryIdx = binaryIdx;
        request.partition = &build.partition;
        request.core = cpu::coreConfigFor(kind);
        return request;
    }
};

const cpu::CoreKind bothCores[] = {cpu::CoreKind::InOrder,
                                   cpu::CoreKind::Decoupled};

} // namespace

TEST(RegionSim, WarmFliRegionsMatchGatedFullRun)
{
    Fixture f(5000);
    const std::size_t binaryIdx = 0;
    for (const cpu::CoreKind kind : bothCores) {
        const sim::DetailedRunRequest request =
            f.fliRequest(binaryIdx, kind);
        const auto detailed =
            sim::runDetailed(f.binaries[binaryIdx], request);

        for (std::size_t region :
             {std::size_t(0), std::size_t(2),
              detailed.fliIntervals.size() - 1}) {
            const sim::IntervalStats standalone =
                sim::simulateFliRegion(f.binaries[binaryIdx], request,
                                       region,
                                       sim::RegionWarming::Warm);
            EXPECT_EQ(standalone.instrs,
                      detailed.fliIntervals[region].instrs)
                << "core " << cpu::coreKindName(kind) << " region "
                << region;
            EXPECT_EQ(standalone.cycles,
                      detailed.fliIntervals[region].cycles)
                << "core " << cpu::coreKindName(kind) << " region "
                << region;
        }
    }
}

TEST(RegionSim, WarmVliRegionsMatchGatedFullRun)
{
    Fixture f(5000);
    for (const cpu::CoreKind kind : bothCores) {
        for (std::size_t binaryIdx :
             {std::size_t(0), std::size_t(3)}) {
            const sim::DetailedRunRequest request =
                f.vliRequest(binaryIdx, kind);
            const auto detailed =
                sim::runDetailed(f.binaries[binaryIdx], request);
            ASSERT_EQ(detailed.vliIntervals.size(),
                      f.build.partition.intervalCount());

            for (std::size_t region :
                 {std::size_t(0), std::size_t(1),
                  f.build.partition.intervalCount() - 1}) {
                const sim::IntervalStats standalone =
                    sim::simulateVliRegion(f.binaries[binaryIdx],
                                           request, region,
                                           sim::RegionWarming::Warm);
                EXPECT_EQ(standalone.instrs,
                          detailed.vliIntervals[region].instrs)
                    << "core " << cpu::coreKindName(kind)
                    << " binary " << binaryIdx << " region "
                    << region;
                EXPECT_EQ(standalone.cycles,
                          detailed.vliIntervals[region].cycles)
                    << "core " << cpu::coreKindName(kind)
                    << " binary " << binaryIdx << " region "
                    << region;
            }
        }
    }
}

TEST(RegionSim, ColdStartCostsMoreCycles)
{
    Fixture f(5000);
    // A middle region: cold caches force extra misses, so the cold
    // replay takes at least as many cycles over the same work.
    const std::size_t region = 2;
    const sim::DetailedRunRequest request =
        f.vliRequest(0, cpu::CoreKind::InOrder);
    const sim::IntervalStats warm = sim::simulateVliRegion(
        f.binaries[0], request, region, sim::RegionWarming::Warm);
    const sim::IntervalStats cold = sim::simulateVliRegion(
        f.binaries[0], request, region, sim::RegionWarming::Cold);
    EXPECT_EQ(warm.instrs, cold.instrs);
    EXPECT_GT(cold.cycles, warm.cycles);
}

TEST(RegionSim, FirstRegionWarmEqualsCold)
{
    Fixture f(5000);
    // Region 0 starts at program start where caches are cold anyway.
    const sim::DetailedRunRequest request =
        f.fliRequest(0, cpu::CoreKind::InOrder);
    const sim::IntervalStats warm = sim::simulateFliRegion(
        f.binaries[0], request, 0, sim::RegionWarming::Warm);
    const sim::IntervalStats cold = sim::simulateFliRegion(
        f.binaries[0], request, 0, sim::RegionWarming::Cold);
    EXPECT_EQ(warm.instrs, cold.instrs);
    EXPECT_EQ(warm.cycles, cold.cycles);
}

TEST(RegionSim, OutOfRangeIndexFatal)
{
    Fixture f(5000);
    EXPECT_EXIT((void)sim::simulateFliRegion(
                    f.binaries[0],
                    f.fliRequest(0, cpu::CoreKind::InOrder), 9999,
                    sim::RegionWarming::Warm),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT((void)sim::simulateVliRegion(
                    f.binaries[0],
                    f.vliRequest(0, cpu::CoreKind::InOrder), 9999,
                    sim::RegionWarming::Warm),
                ::testing::ExitedWithCode(1), "out of range");
}
