/**
 * @file
 * Tests for the logging layer's levels and failure modes.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

using namespace xbsp;

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom {}", 42), "panic: boom 42");
}

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad input {}", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad input x");
}

TEST(Logging, LevelsControlOutput)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Quiet);
    // Nothing observable, but the calls must be safe at every level.
    warn("suppressed {}", 1);
    inform("suppressed {}", 2);
    debugLog("suppressed {}", 3);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(saved);
}

TEST(Logging, ParseLogLevelNamesRoundTrip)
{
    for (const LogLevel level :
         {LogLevel::Quiet, LogLevel::Warn, LogLevel::Inform,
          LogLevel::Debug}) {
        const auto parsed = parseLogLevel(logLevelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    // "info" is accepted as an alias for inform.
    ASSERT_TRUE(parseLogLevel("info").has_value());
    EXPECT_EQ(*parseLogLevel("info"), LogLevel::Inform);
    EXPECT_FALSE(parseLogLevel("loud").has_value());
    EXPECT_FALSE(parseLogLevel("").has_value());
    EXPECT_FALSE(parseLogLevel("WARN").has_value());
}
