/**
 * @file
 * Tests for the logging layer's levels and failure modes.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

using namespace xbsp;

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom {}", 42), "panic: boom 42");
}

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad input {}", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad input x");
}

TEST(Logging, LevelsControlOutput)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Quiet);
    // Nothing observable, but the calls must be safe at every level.
    warn("suppressed {}", 1);
    inform("suppressed {}", 2);
    debugLog("suppressed {}", 3);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(saved);
}
