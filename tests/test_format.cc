/**
 * @file
 * Unit tests for the std::format-subset shim.
 */

#include <gtest/gtest.h>

#include "util/format.hh"

using namespace xbsp;

TEST(Format, PlainText)
{
    EXPECT_EQ(format("hello"), "hello");
    EXPECT_EQ(format(""), "");
}

TEST(Format, Integers)
{
    EXPECT_EQ(format("{}", 42), "42");
    EXPECT_EQ(format("{}", -7), "-7");
    EXPECT_EQ(format("{}", 0u), "0");
    EXPECT_EQ(format("{:d}", 123), "123");
    EXPECT_EQ(format("{:x}", 255), "ff");
    EXPECT_EQ(format("{}", std::uint64_t(18446744073709551615ull)),
              "18446744073709551615");
}

TEST(Format, Floats)
{
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.0f}", 2.6), "3");
    EXPECT_EQ(format("{:.3g}", 1234.5), "1.23e+03");
    EXPECT_EQ(format("{}", 0.5), "0.5");
}

TEST(Format, StringsAndBools)
{
    EXPECT_EQ(format("{}", "abc"), "abc");
    EXPECT_EQ(format("{}", std::string("xyz")), "xyz");
    EXPECT_EQ(format("{}", true), "true");
    EXPECT_EQ(format("{}", false), "false");
}

TEST(Format, MultipleArguments)
{
    EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(format("{}{}", "a", "b"), "ab");
}

TEST(Format, EscapedBraces)
{
    EXPECT_EQ(format("{{}}"), "{}");
    EXPECT_EQ(format("{{{}}}", 5), "{5}");
}

TEST(Format, ErrorsThrow)
{
    EXPECT_THROW((void)format("{"), std::runtime_error);
    EXPECT_THROW((void)format("}"), std::runtime_error);
    EXPECT_THROW((void)format("{}"), std::runtime_error);
    EXPECT_THROW((void)format("{:q}", 1), std::runtime_error);
    EXPECT_THROW((void)format("{:zz}", 1.0), std::runtime_error);
}

TEST(Format, EnumFormatsAsUnderlying)
{
    enum class Small : int { A = 3 };
    EXPECT_EQ(format("{}", Small::A), "3");
}
