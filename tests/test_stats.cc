/**
 * @file
 * Unit tests for the numeric helper functions.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.hh"

using namespace xbsp;

TEST(Stats, Mean)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, Stddev)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, Geomean)
{
    std::vector<double> xs{1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    std::vector<double> xs{1.0, -4.0};
    EXPECT_DEATH((void)geomean(xs), "positive");
}

TEST(Stats, WeightedMean)
{
    std::vector<double> xs{1.0, 3.0};
    std::vector<double> ws{1.0, 3.0};
    EXPECT_DOUBLE_EQ(weightedMean(xs, ws), 2.5);
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_DOUBLE_EQ(weightedMean(xs, zeros), 0.0);
}

TEST(Stats, WeightedMeanSizeMismatchPanics)
{
    std::vector<double> xs{1.0, 3.0};
    std::vector<double> ws{1.0};
    EXPECT_DEATH((void)weightedMean(xs, ws), "weights");
}

TEST(Stats, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(2.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(relativeError(2.0, 3.0), 0.5);
    EXPECT_DOUBLE_EQ(relativeError(2.0, 2.0), 0.0);
    // Zero truth falls back to absolute difference.
    EXPECT_DOUBLE_EQ(relativeError(0.0, 0.25), 0.25);
}

TEST(Stats, SignedRelativeError)
{
    EXPECT_DOUBLE_EQ(signedRelativeError(2.0, 1.0), -0.5);
    EXPECT_DOUBLE_EQ(signedRelativeError(2.0, 3.0), 0.5);
}

TEST(Stats, RunningStat)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    for (double x : {2.0, 4.0, 6.0})
        rs.add(x);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 6.0);
    EXPECT_NEAR(rs.stddev(), std::sqrt(8.0 / 3.0), 1e-12);
}
