/**
 * @file
 * Unit and property tests for the execution engine: instruction
 * accounting, determinism, observer hooks and event ordering.
 */

#include <gtest/gtest.h>

#include "exec/engine.hh"
#include "test_support.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

struct CountingObserver : exec::Observer
{
    u64 blocks = 0;
    InstrCount instrs = 0;
    u64 memRefs = 0;
    u64 markers = 0;
    bool ended = false;

    void
    onBlock(u32, u32 n) override
    {
        ++blocks;
        instrs += n;
    }

    void onMemRef(Addr, bool) override { ++memRefs; }
    void onMarker(u32) override { ++markers; }
    void onRunEnd() override { ended = true; }
};

} // namespace

TEST(Engine, InstructionCountMatchesStaticComputation)
{
    const auto bins = test::compileFour(test::tinyProgram());
    for (const auto& binary : bins) {
        exec::Engine engine(binary);
        engine.run();
        EXPECT_EQ(engine.instructionsExecuted(),
                  bin::staticDynamicInstrCount(binary))
            << binary.displayName();
    }
}

TEST(Engine, ObserverTotalsConsistent)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    CountingObserver obs;
    engine.addObserver(&obs, {true, true, true});
    engine.run();
    EXPECT_TRUE(obs.ended);
    EXPECT_EQ(obs.instrs, engine.instructionsExecuted());
    // Memory references = sum over blocks of (memOps + stackOps) x
    // executions; cross-check against a manual walk.
    u64 expectedRefs = 0;
    {
        exec::Engine recount(binary);
        struct RefCounter : exec::Observer
        {
            const bin::Binary& bin;
            u64 refs = 0;
            explicit RefCounter(const bin::Binary& b) : bin(b) {}
            void
            onBlock(u32 id, u32) override
            {
                refs += bin.blocks[id].memOps + bin.blocks[id].stackOps;
            }
        } counter(binary);
        recount.addObserver(&counter, {true, false, false});
        recount.run();
        expectedRefs = counter.refs;
    }
    EXPECT_EQ(obs.memRefs, expectedRefs);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target64o);
    std::vector<Addr> first;
    for (int run = 0; run < 2; ++run) {
        exec::Engine engine(binary, 1234);
        struct Recorder : exec::Observer
        {
            std::vector<Addr>* sink;
            void
            onMemRef(Addr addr, bool) override
            {
                if (sink->size() < 10000)
                    sink->push_back(addr);
            }
        } recorder;
        std::vector<Addr> addrs;
        recorder.sink = &addrs;
        engine.addObserver(&recorder, {false, true, false});
        engine.run();
        if (run == 0)
            first = addrs;
        else
            EXPECT_EQ(first, addrs);
    }
}

TEST(Engine, SeedChangesAddressStreamNotCounts)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32o);
    exec::Engine a(binary, 1), b(binary, 2);
    CountingObserver ca, cb;
    a.addObserver(&ca, {true, true, true});
    b.addObserver(&cb, {true, true, true});
    a.run();
    b.run();
    EXPECT_EQ(ca.instrs, cb.instrs);
    EXPECT_EQ(ca.blocks, cb.blocks);
    EXPECT_EQ(ca.markers, cb.markers);
    EXPECT_EQ(ca.memRefs, cb.memRefs);
}

TEST(Engine, HooksFilterEventKinds)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    CountingObserver onlyBlocks, onlyMarkers;
    engine.addObserver(&onlyBlocks, {true, false, false});
    engine.addObserver(&onlyMarkers, {false, false, true});
    engine.run();
    EXPECT_GT(onlyBlocks.blocks, 0u);
    EXPECT_EQ(onlyBlocks.memRefs, 0u);
    EXPECT_EQ(onlyBlocks.markers, 0u);
    EXPECT_EQ(onlyMarkers.blocks, 0u);
    EXPECT_GT(onlyMarkers.markers, 0u);
    EXPECT_TRUE(onlyBlocks.ended);
    EXPECT_TRUE(onlyMarkers.ended);
}

TEST(Engine, MemRefsDispatchedBeforeBlockEvent)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    struct OrderChecker : exec::Observer
    {
        u64 refsSinceBlock = 0;
        const bin::Binary& bin;
        bool ok = true;
        explicit OrderChecker(const bin::Binary& b) : bin(b) {}
        void onMemRef(Addr, bool) override { ++refsSinceBlock; }
        void
        onBlock(u32 id, u32) override
        {
            const auto& blk = bin.blocks[id];
            ok &= refsSinceBlock == blk.memOps + blk.stackOps;
            refsSinceBlock = 0;
        }
    } checker(binary);
    engine.addObserver(&checker, {true, true, false});
    engine.run();
    EXPECT_TRUE(checker.ok);
}

TEST(Engine, MarkerEventsMatchProfileSemantics)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const auto profile = test::profileMarkers(binary);
    // main entered once, setup once, work and tail 10x.
    EXPECT_EQ(test::markerGroupCount(binary, profile,
                                     bin::MarkerKind::ProcEntry,
                                     "main", 0), 1u);
    EXPECT_EQ(test::markerGroupCount(binary, profile,
                                     bin::MarkerKind::ProcEntry,
                                     "setup", 0), 1u);
    EXPECT_EQ(test::markerGroupCount(binary, profile,
                                     bin::MarkerKind::ProcEntry,
                                     "work", 0), 10u);
    EXPECT_EQ(test::markerGroupCount(binary, profile,
                                     bin::MarkerKind::ProcEntry,
                                     "tail", 0), 10u);
}

TEST(Engine, RunOnceSubscribesPerObserverHooks)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);

    // An observer that declares a blocks-only subscription must not
    // receive memory references or markers through runOnce.
    struct BlocksOnly : CountingObserver
    {
        exec::ObserverHooks
        hooks() const override
        {
            return {true, false, false};
        }
    } blocksOnly;
    // The default hooks() is all-on, so undeclared observers keep
    // the old runOnce behaviour.
    CountingObserver everything;

    const InstrCount ran =
        exec::runOnce(binary, {&blocksOnly, &everything});
    EXPECT_EQ(ran, bin::staticDynamicInstrCount(binary));
    EXPECT_GT(blocksOnly.blocks, 0u);
    EXPECT_EQ(blocksOnly.memRefs, 0u);
    EXPECT_EQ(blocksOnly.markers, 0u);
    EXPECT_TRUE(blocksOnly.ended);
    EXPECT_GT(everything.blocks, 0u);
    EXPECT_GT(everything.memRefs, 0u);
    EXPECT_GT(everything.markers, 0u);
    EXPECT_TRUE(everything.ended);
}

TEST(Engine, RunTwicePanics)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    engine.run();
    EXPECT_DEATH(engine.run(), "run called twice");
}

TEST(Engine, AddObserverAfterRunPanics)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    engine.run();
    CountingObserver obs;
    EXPECT_DEATH(engine.addObserver(&obs, {true, false, false}),
                 "after run");
}

class EngineWorkloadTest
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(EngineWorkloadTest, InstrCountMatchesStaticOnAllTargets)
{
    const ir::Program program =
        workloads::makeWorkload(GetParam(), 0.05);
    for (const auto& target : compile::standardTargets()) {
        const bin::Binary binary =
            compile::compileProgram(program, target);
        exec::Engine engine(binary);
        engine.run();
        EXPECT_EQ(engine.instructionsExecuted(),
                  bin::staticDynamicInstrCount(binary))
            << binary.displayName();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineWorkloadTest,
    ::testing::Values("ammp", "applu", "apsi", "art", "bzip2",
                      "crafty", "eon", "equake", "fma3d", "gcc",
                      "gzip", "lucas", "mcf", "mesa", "perlbmk",
                      "sixtrack", "swim", "twolf", "vortex", "vpr",
                      "wupwise"));
