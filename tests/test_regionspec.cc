/**
 * @file
 * Tests for the per-binary region-spec exporter (§3.2.5).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/regionspec.hh"
#include "sim/study.hh"
#include "test_support.hh"

using namespace xbsp;

namespace
{

sim::CrossBinaryStudy
makeStudy()
{
    sim::StudyConfig config;
    config.intervalTarget = 30000;
    return sim::CrossBinaryStudy::run(test::tinyProgram(), config);
}

std::vector<double>
weightsOf(const sim::BinaryStudy& bs)
{
    std::vector<double> weights;
    for (const auto& phase : bs.vliEstimate.phases)
        weights.push_back(phase.weight);
    return weights;
}

} // namespace

TEST(RegionSpec, OneSpecPerPhaseWithBinaryWeights)
{
    const auto study = makeStudy();
    for (std::size_t b = 0; b < 4; ++b) {
        const auto& bs = study.perBinary()[b];
        const auto specs = core::buildRegionSpecs(
            study.mappable(), study.partition(),
            study.vliClustering(), b, weightsOf(bs));
        ASSERT_EQ(specs.size(), study.vliClustering().phases.size());
        double total = 0.0;
        for (const auto& spec : specs)
            total += spec.weight;
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(RegionSpec, AnchorsResolveToBinaryMarkers)
{
    const auto study = makeStudy();
    const std::size_t b = 1; // 32o
    const auto specs = core::buildRegionSpecs(
        study.mappable(), study.partition(), study.vliClustering(), b,
        weightsOf(study.perBinary()[b]));
    const u32 markerCount = study.binaries()[b].markerCount();
    for (const auto& spec : specs) {
        for (const core::RegionAnchor* anchor :
             {&spec.start, &spec.end}) {
            if (anchor->atProgramEdge)
                continue;
            EXPECT_FALSE(anchor->markerIds.empty());
            for (u32 marker : anchor->markerIds)
                EXPECT_LT(marker, markerCount);
            EXPECT_GE(anchor->fireCount, 1u);
        }
    }
}

TEST(RegionSpec, FirstAndLastIntervalsUseProgramEdges)
{
    const auto study = makeStudy();
    const auto specs = core::buildRegionSpecs(
        study.mappable(), study.partition(), study.vliClustering(), 0,
        weightsOf(study.perBinary()[0]));
    const std::size_t last = study.partition().intervalCount() - 1;
    for (std::size_t p = 0;
         p < study.vliClustering().phases.size(); ++p) {
        const u32 rep = study.vliClustering().phases[p].representative;
        EXPECT_EQ(specs[p].start.atProgramEdge, rep == 0);
        EXPECT_EQ(specs[p].end.atProgramEdge, rep == last);
    }
}

TEST(RegionSpec, SerializationFormat)
{
    const auto study = makeStudy();
    const auto specs = core::buildRegionSpecs(
        study.mappable(), study.partition(), study.vliClustering(), 0,
        weightsOf(study.perBinary()[0]));
    std::ostringstream os;
    core::writeRegionSpecs(os, specs);
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("# phase weight", 0), 0u);
    // One line per spec plus the header.
    std::size_t lines = 0;
    for (char ch : out)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, specs.size() + 1);
}

TEST(RegionSpec, WeightCountMismatchFatal)
{
    const auto study = makeStudy();
    EXPECT_EXIT((void)core::buildRegionSpecs(
                    study.mappable(), study.partition(),
                    study.vliClustering(), 0, {0.5}),
                ::testing::ExitedWithCode(1), "weights");
}

TEST(RegionSpec, BadBinaryIndexFatal)
{
    const auto study = makeStudy();
    EXPECT_EXIT((void)core::buildRegionSpecs(
                    study.mappable(), study.partition(),
                    study.vliClustering(), 9,
                    weightsOf(study.perBinary()[0])),
                ::testing::ExitedWithCode(1), "out of range");
}
