/**
 * @file
 * Unit tests for the ASCII table / CSV renderer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/table.hh"

using namespace xbsp;

namespace
{

Table
sample()
{
    Table t("Sample", {"name", "value", "pct"});
    t.startRow();
    t.addCell("alpha");
    t.addNumber(1.23456, 2);
    t.addPercent(0.125, 1);
    t.startRow();
    t.addCell("beta");
    t.addInteger(-42);
    t.addPercent(1.0, 0);
    return t;
}

} // namespace

TEST(Table, CellsFormatting)
{
    Table t = sample();
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.columnCount(), 3u);
    EXPECT_EQ(t.cell(0, 0), "alpha");
    EXPECT_EQ(t.cell(0, 1), "1.23");
    EXPECT_EQ(t.cell(0, 2), "12.5%");
    EXPECT_EQ(t.cell(1, 1), "-42");
    EXPECT_EQ(t.cell(1, 2), "100%");
}

TEST(Table, PrintAligned)
{
    std::ostringstream os;
    sample().print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== Sample =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Header separator line of dashes exists.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, Csv)
{
    std::ostringstream os;
    sample().printCsv(os);
    EXPECT_EQ(os.str(),
              "name,value,pct\nalpha,1.23,12.5%\nbeta,-42,100%\n");
}

TEST(Table, CsvEscaping)
{
    Table t("Esc", {"a"});
    t.startRow();
    t.addCell("has,comma and \"quote\"");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a\n\"has,comma and \"\"quote\"\"\"\n");
}

TEST(Table, OverflowPanics)
{
    Table t("X", {"only"});
    t.startRow();
    t.addCell("one");
    EXPECT_DEATH(t.addCell("two"), "overflow");
}

TEST(Table, CellWithoutRowPanics)
{
    Table t("X", {"only"});
    EXPECT_DEATH(t.addCell("oops"), "without startRow");
}

TEST(Table, OutOfRangePanics)
{
    Table t = sample();
    EXPECT_DEATH((void)t.cell(5, 0), "out of range");
}

TEST(Table, NoColumnsFatal)
{
    EXPECT_DEATH(Table("bad", {}), "no columns");
}
