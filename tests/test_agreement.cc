/**
 * @file
 * Unit tests for the phase-agreement analysis (adjusted Rand index
 * and label projection), plus an integration check that per-binary
 * FLI clusterings really do agree less than the mapped VLI scheme.
 */

#include <gtest/gtest.h>

#include "core/agreement.hh"
#include "sim/study.hh"
#include "test_support.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

TEST(AdjustedRand, IdenticalPartitions)
{
    const std::vector<u32> a{0, 0, 1, 1, 2, 2};
    EXPECT_DOUBLE_EQ(core::adjustedRandIndex(a, a), 1.0);
}

TEST(AdjustedRand, RenamedLabelsStillPerfect)
{
    const std::vector<u32> a{0, 0, 1, 1, 2, 2};
    const std::vector<u32> b{5, 5, 9, 9, 1, 1};
    EXPECT_DOUBLE_EQ(core::adjustedRandIndex(a, b), 1.0);
}

TEST(AdjustedRand, IndependentPartitionsNearZero)
{
    // Large random labelings are nearly independent.
    Rng rng(6);
    std::vector<u32> a(2000), b(2000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<u32>(rng.nextBelow(4));
        b[i] = static_cast<u32>(rng.nextBelow(4));
    }
    EXPECT_NEAR(core::adjustedRandIndex(a, b), 0.0, 0.05);
}

TEST(AdjustedRand, PartialAgreementBetween)
{
    const std::vector<u32> a{0, 0, 0, 0, 1, 1, 1, 1};
    const std::vector<u32> b{0, 0, 0, 1, 1, 1, 1, 1};
    const double ari = core::adjustedRandIndex(a, b);
    EXPECT_GT(ari, 0.2);
    EXPECT_LT(ari, 1.0);
}

TEST(AdjustedRand, DegenerateSingleCluster)
{
    const std::vector<u32> a{0, 0, 0};
    EXPECT_DOUBLE_EQ(core::adjustedRandIndex(a, a), 1.0);
}

TEST(AdjustedRand, SizeMismatchPanics)
{
    EXPECT_DEATH((void)core::adjustedRandIndex({0, 1}, {0}),
                 "labels");
}

TEST(ProjectLabels, DominantOverlapWins)
{
    // FLI intervals: [0,100)=A, [100,200)=B; frames: [0,150), [150,200).
    const std::vector<InstrCount> ends{100, 200};
    const std::vector<u32> labels{7, 3};
    const std::vector<InstrCount> frames{150, 50};
    const auto projected =
        core::projectLabelsOntoFrame(ends, labels, frames);
    ASSERT_EQ(projected.size(), 2u);
    EXPECT_EQ(projected[0], 7u); // 100 instrs of A vs 50 of B
    EXPECT_EQ(projected[1], 3u);
}

TEST(ProjectLabels, ExactAlignmentIsIdentity)
{
    const std::vector<InstrCount> ends{50, 120, 300};
    const std::vector<u32> labels{2, 9, 4};
    const std::vector<InstrCount> frames{50, 70, 180};
    EXPECT_EQ(core::projectLabelsOntoFrame(ends, labels, frames),
              labels);
}

TEST(ProjectLabels, ManyFramesPerFliInterval)
{
    const std::vector<InstrCount> ends{1000};
    const std::vector<u32> labels{5};
    const std::vector<InstrCount> frames{250, 250, 250, 250};
    const auto projected =
        core::projectLabelsOntoFrame(ends, labels, frames);
    EXPECT_EQ(projected, (std::vector<u32>{5, 5, 5, 5}));
}

TEST(Agreement, VliLabelsAgreeAcrossBinariesByConstruction)
{
    // The mapped VLI scheme applies one labeling everywhere, so its
    // cross-binary ARI is trivially 1; this asserts the frame
    // machinery agrees with itself end to end.
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    const auto study =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    const auto& labels = study.vliClustering().labels;
    for (const auto& bs : study.perBinary()) {
        EXPECT_EQ(bs.detailedRun.vliIntervals.size(), labels.size());
    }
}

TEST(Agreement, FliClusteringsAgreeLessThanPerfect)
{
    // On gcc (the Table 2 subject) the per-binary FLI clusterings,
    // projected onto the common mapped frame, must disagree
    // measurably between 32u and 64u — the quantitative form of the
    // paper's changing-bias argument.
    sim::StudyConfig config;
    config.intervalTarget = 150000;
    const auto study = sim::CrossBinaryStudy::run(
        workloads::makeWorkload("gcc", 0.5), config);

    auto frameLabels = [&](std::size_t b) {
        const auto& bs = study.perBinary()[b];
        std::vector<InstrCount> ends = bs.fliBoundaries;
        std::vector<InstrCount> frames;
        for (const auto& iv : bs.detailedRun.vliIntervals)
            frames.push_back(iv.instrs);
        return core::projectLabelsOntoFrame(
            ends, bs.fliClustering.labels, frames);
    };
    const double ari =
        core::adjustedRandIndex(frameLabels(0), frameLabels(2));
    EXPECT_LT(ari, 0.98);
    EXPECT_GT(ari, -0.5);
}
