/**
 * @file
 * Unit tests for the set-associative LRU cache level.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace xbsp;
using cache::LevelConfig;
using cache::SetAssociativeCache;

namespace
{

/** 2-way, 4-set toy cache: 8 lines of 64B. */
LevelConfig
toyConfig()
{
    return LevelConfig{"toy", 8 * 64, 2, 64, 3};
}

/** Address of set `set`, distinct tag `tag`. */
Addr
addrFor(u64 set, u64 tag)
{
    return (tag * 4 + set) * 64; // 4 sets
}

} // namespace

TEST(Cache, MissThenHit)
{
    SetAssociativeCache cache(toyConfig());
    EXPECT_FALSE(cache.lookup(0x1000, false));
    cache.fill(0x1000, false);
    EXPECT_TRUE(cache.lookup(0x1000, false));
    // Same line, different byte offset.
    EXPECT_TRUE(cache.lookup(0x103F, false));
    EXPECT_EQ(cache.accesses(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(0, 1), b = addrFor(0, 2), c = addrFor(0, 3);
    cache.fill(a, false);
    cache.fill(b, false);
    // Touch a so b becomes LRU.
    EXPECT_TRUE(cache.lookup(a, false));
    const cache::Eviction ev = cache.fill(c, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b);
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(1, 1), b = addrFor(1, 2), c = addrFor(1, 3);
    cache.fill(a, false);
    EXPECT_TRUE(cache.lookup(a, true)); // make dirty
    cache.fill(b, false);
    cache.fill(c, false); // evicts a (LRU), which is dirty
    EXPECT_EQ(cache.writebacksOut(), 1u);
}

TEST(Cache, FillDirtyInstallsDirtyLine)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(2, 1);
    cache.fill(a, true);
    // Evict it with two clean fills; the dirty line writes back.
    cache.fill(addrFor(2, 2), false);
    cache.fill(addrFor(2, 3), false);
    EXPECT_EQ(cache.writebacksOut(), 1u);
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(0, 1), b = addrFor(0, 2), c = addrFor(0, 3);
    cache.fill(a, false);
    cache.fill(b, false);
    // probe(a) must NOT refresh a; a stays LRU and gets evicted.
    EXPECT_TRUE(cache.probe(a));
    const cache::Eviction ev = cache.fill(c, false);
    EXPECT_EQ(ev.lineAddr, a);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssociativeCache cache(toyConfig());
    cache.fill(0x0, true);
    cache.fill(0x40, false);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x0));
    EXPECT_FALSE(cache.probe(0x40));
    // Flush drops dirty data without writeback accounting.
    cache.fill(addrFor(0, 7), false);
    EXPECT_EQ(cache.writebacksOut(), 0u);
}

TEST(Cache, MissRateAndResetStats)
{
    SetAssociativeCache cache(toyConfig());
    cache.lookup(0x0, false);
    cache.fill(0x0, false);
    cache.lookup(0x0, false);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
    cache.resetStats();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.0);
    EXPECT_TRUE(cache.probe(0x0)) << "contents survive resetStats";
}

TEST(Cache, AssociativityIsolation)
{
    // Filling every set's both ways keeps all lines resident.
    SetAssociativeCache cache(toyConfig());
    for (u64 set = 0; set < 4; ++set) {
        cache.fill(addrFor(set, 1), false);
        cache.fill(addrFor(set, 2), false);
    }
    for (u64 set = 0; set < 4; ++set) {
        EXPECT_TRUE(cache.probe(addrFor(set, 1)));
        EXPECT_TRUE(cache.probe(addrFor(set, 2)));
    }
}

TEST(Cache, BadGeometryFatal)
{
    LevelConfig bad = toyConfig();
    bad.lineSize = 48;
    EXPECT_EXIT(SetAssociativeCache{bad},
                ::testing::ExitedWithCode(1), "power of two");
    bad = toyConfig();
    bad.associativity = 0;
    EXPECT_EXIT(SetAssociativeCache{bad},
                ::testing::ExitedWithCode(1), "associativity");
    bad = toyConfig();
    bad.capacityBytes = 3 * 64; // not divisible into 2-way sets
    EXPECT_EXIT(SetAssociativeCache{bad},
                ::testing::ExitedWithCode(1), "divisible");
}

TEST(Cache, TouchIfPresentMatchesLookupOnHit)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(0, 1);
    cache.fill(a, false);
    const u64 before = cache.accesses();
    EXPECT_TRUE(cache.touchIfPresent(a));
    // Counts one access (like the write lookup it replaces), no miss,
    // and the line is now dirty: evicting it produces a writeback.
    EXPECT_EQ(cache.accesses(), before + 1);
    EXPECT_EQ(cache.misses(), 0u);
    cache.fill(addrFor(0, 2), false);
    cache.fill(addrFor(0, 3), false);
    EXPECT_EQ(cache.writebacksOut(), 1u);
}

TEST(Cache, TouchIfPresentMissIsStateless)
{
    SetAssociativeCache cache(toyConfig());
    cache.fill(addrFor(0, 1), false);
    const u64 before = cache.accesses();
    EXPECT_FALSE(cache.touchIfPresent(addrFor(0, 9)));
    EXPECT_EQ(cache.accesses(), before);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_FALSE(cache.probe(addrFor(0, 9)));
}

TEST(Cache, TouchIfPresentRefreshesLru)
{
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(3, 1), b = addrFor(3, 2), c = addrFor(3, 3);
    cache.fill(a, false);
    cache.fill(b, false);
    // Touch a so b becomes LRU, exactly like a hitting lookup would.
    EXPECT_TRUE(cache.touchIfPresent(a));
    const cache::Eviction ev = cache.fill(c, false);
    EXPECT_EQ(ev.lineAddr, b);
}

TEST(Cache, MruHintPreservesLruOrder)
{
    // Alternate hits across both ways of one set (so the MRU-way
    // front check repeatedly misses its hint) and confirm LRU
    // eviction order is still exact.
    SetAssociativeCache cache(toyConfig());
    const Addr a = addrFor(2, 1), b = addrFor(2, 2);
    cache.fill(a, false);
    cache.fill(b, false);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(cache.lookup(a, false));
        EXPECT_TRUE(cache.lookup(b, false));
    }
    EXPECT_TRUE(cache.lookup(a, false)); // a is now MRU, b is LRU
    const cache::Eviction ev = cache.fill(addrFor(2, 3), false);
    EXPECT_EQ(ev.lineAddr, b);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(Cache, PaperGeometriesConstruct)
{
    (void)SetAssociativeCache(LevelConfig{"L1D", 32768, 2, 64, 3});
    (void)SetAssociativeCache(LevelConfig{"L2D", 524288, 8, 64, 14});
    (void)SetAssociativeCache(LevelConfig{"L3D", 1048576, 16, 64, 35});
    SUCCEED();
}
