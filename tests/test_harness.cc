/**
 * @file
 * Tests for the experiment harness: table shapes, caching and the
 * default configuration.
 */

#include <gtest/gtest.h>

#include "harness/experiments.hh"

using namespace xbsp;

namespace
{

harness::ExperimentConfig
quickConfig(std::vector<std::string> workloads)
{
    harness::ExperimentConfig config;
    config.workloads = std::move(workloads);
    config.workScale = 0.15;
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = 100000;
    config.verbose = false;
    return config;
}

} // namespace

TEST(Harness, DefaultConfigMatchesPaper)
{
    const sim::StudyConfig config = harness::defaultStudyConfig();
    EXPECT_EQ(config.simpoint.maxK, 10u);
    EXPECT_EQ(config.simpoint.projectedDims, 15u);
    EXPECT_DOUBLE_EQ(config.simpoint.bicThreshold, 0.9);
    EXPECT_EQ(config.primaryIdx, 0u);
    EXPECT_EQ(config.memory.l1.capacityBytes, 32u * 1024);
    EXPECT_EQ(config.memory.l3.hitLatency, 35u);
}

TEST(Harness, UnknownWorkloadFatal)
{
    EXPECT_EXIT(harness::ExperimentSuite(quickConfig({"nope"})),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Harness, EmptyListMeansFullSuite)
{
    harness::ExperimentSuite suite(quickConfig({}));
    EXPECT_EQ(suite.workloads().size(), 21u);
}

TEST(Harness, Table1Shape)
{
    const Table table = harness::ExperimentSuite::table1(
        cache::HierarchyConfig::paperTable1());
    EXPECT_EQ(table.rowCount(), 4u); // L1, L2, L3, DRAM
    EXPECT_EQ(table.columnCount(), 6u);
    EXPECT_EQ(table.cell(0, 0), "L1D");
    EXPECT_EQ(table.cell(0, 1), "32KB");
    EXPECT_EQ(table.cell(1, 2), "8-way");
    EXPECT_EQ(table.cell(2, 4), "35 cycles");
    EXPECT_EQ(table.cell(3, 0), "DRAM");
}

TEST(Harness, FigureTablesHaveWorkloadRowsPlusAverage)
{
    harness::ExperimentSuite suite(quickConfig({"gzip", "eon"}));
    for (Table table : {suite.figure1(), suite.figure2(),
                        suite.figure3(), suite.figure4(),
                        suite.figure5()}) {
        EXPECT_EQ(table.rowCount(), 3u) << table.caption();
        EXPECT_EQ(table.cell(0, 0), "gzip");
        EXPECT_EQ(table.cell(1, 0), "eon");
        EXPECT_EQ(table.cell(2, 0), "Avg");
    }
}

TEST(Harness, SpeedupTablesHavePairColumns)
{
    harness::ExperimentSuite suite(quickConfig({"gzip"}));
    const Table fig4 = suite.figure4();
    EXPECT_EQ(fig4.columnCount(), 5u); // benchmark + 2 pairs x 2
    const Table fig5 = suite.figure5();
    EXPECT_EQ(fig5.columnCount(), 5u);
}

TEST(Harness, PhaseTablesShapeAndMethods)
{
    harness::ExperimentConfig config = quickConfig({"gcc", "apsi"});
    harness::ExperimentSuite suite(config);
    const Table t2 = suite.table2();
    EXPECT_EQ(t2.columnCount(), 10u);
    EXPECT_GE(t2.rowCount(), 2u);
    EXPECT_LE(t2.rowCount(), 6u); // up to 3 phases x 2 methods
    EXPECT_EQ(t2.cell(0, 0), "VLI");
    const Table t3 = suite.table3();
    EXPECT_GE(t3.rowCount(), 2u);
}

TEST(Harness, StudyCaching)
{
    harness::ExperimentSuite suite(quickConfig({"gzip"}));
    const sim::CrossBinaryStudy& first = suite.study("gzip");
    const sim::CrossBinaryStudy& second = suite.study("gzip");
    EXPECT_EQ(&first, &second);
}

TEST(Harness, MappabilityReportShape)
{
    harness::ExperimentSuite suite(quickConfig({"gzip", "eon"}));
    const Table report = suite.mappabilityReport();
    EXPECT_EQ(report.rowCount(), 2u);
    EXPECT_EQ(report.columnCount(), 5u);
}
