/**
 * @file
 * The serialization substrate of the artifact store: varint/fixed/f64
 * framing edge cases, the frozen content-hash function (digests are
 * pinned — changing them invalidates every on-disk artifact, which
 * must be a deliberate store-format bump), and bit-exact round trips
 * of every domain codec the store persists.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "binary/serial.hh"
#include "core/serial.hh"
#include "profile/serial.hh"
#include "sim/serial.hh"
#include "simpoint/serial.hh"
#include "test_support.hh"
#include "util/serial.hh"

using namespace xbsp;

TEST(Serial, VarintRoundTripEdgeValues)
{
    const u64 values[] = {0,
                          1,
                          127,
                          128,
                          16383,
                          16384,
                          (1ull << 32) - 1,
                          1ull << 32,
                          std::numeric_limits<u64>::max() - 1,
                          std::numeric_limits<u64>::max()};
    serial::Encoder e;
    for (u64 v : values)
        e.varint(v);
    serial::Decoder d(e.view());
    for (u64 v : values)
        EXPECT_EQ(d.varint(), v);
    d.expectEnd();
}

TEST(Serial, VarintEncodingIsMinimalLength)
{
    serial::Encoder one;
    one.varint(127);
    EXPECT_EQ(one.size(), 1u);
    serial::Encoder two;
    two.varint(128);
    EXPECT_EQ(two.size(), 2u);
    serial::Encoder ten;
    ten.varint(std::numeric_limits<u64>::max());
    EXPECT_EQ(ten.size(), 10u);
}

TEST(Serial, VarintOverflowThrows)
{
    // 10 continuation-style bytes with a 10th byte contributing more
    // than the top bit of a u64.
    const std::string bad(
        "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02", 10);
    serial::Decoder d(bad);
    EXPECT_THROW(d.varint(), serial::DecodeError);
}

TEST(Serial, TruncatedInputThrows)
{
    serial::Encoder e;
    e.fixed64(0x1122334455667788ull);
    const std::string_view bytes = e.view();
    serial::Decoder d(bytes.substr(0, 5));
    EXPECT_THROW(d.fixed64(), serial::DecodeError);

    serial::Decoder empty(std::string_view{});
    EXPECT_THROW(empty.varint(), serial::DecodeError);
}

TEST(Serial, F64RoundTripsExactBitPatterns)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             std::nan("")};
    serial::Encoder e;
    for (double v : values)
        e.f64(v);
    serial::Decoder d(e.view());
    for (double v : values) {
        const double back = d.f64();
        u64 a, b;
        std::memcpy(&a, &v, 8);
        std::memcpy(&b, &back, 8);
        EXPECT_EQ(a, b);  // bit pattern, not value (NaN, -0.0)
    }
}

TEST(Serial, StrRoundTripAndLengthGuard)
{
    serial::Encoder e;
    e.str("");
    e.str(std::string("null\0byte", 9));
    serial::Decoder d(e.view());
    EXPECT_EQ(d.str(), "");
    EXPECT_EQ(d.str(), std::string("null\0byte", 9));
    d.expectEnd();

    // A declared length past the end of input must throw, not read.
    serial::Encoder bad;
    bad.varint(1000);
    bad.bytes("xy", 2);
    serial::Decoder db(bad.view());
    EXPECT_THROW(db.str(), serial::DecodeError);
}

TEST(Serial, ArrayCountRejectsAbsurdCounts)
{
    serial::Encoder e;
    e.varint(std::numeric_limits<u64>::max());
    serial::Decoder d(e.view());
    EXPECT_THROW(d.arrayCount(8), serial::DecodeError);
}

TEST(Serial, ExpectEndThrowsOnTrailingBytes)
{
    serial::Encoder e;
    e.varint(7);
    e.varint(9);
    serial::Decoder d(e.view());
    d.varint();
    EXPECT_THROW(d.expectEnd(), serial::DecodeError);
}

// The hash function is frozen: these digests are part of the on-disk
// cache format.  If an edit changes them, every stored artifact is
// silently orphaned — bump the store format version instead.
TEST(Serial, Hash64PinnedDigests)
{
    EXPECT_EQ(serial::hash64(""), 0x7e99d450b409631aull);
    EXPECT_EQ(serial::hash64("abc"), 0xcf06b620546b49c0ull);
}

TEST(Serial, Hash128PinnedTypedDigest)
{
    serial::Hasher h;
    h.str("xbsp").u64v(42).f64(3.5).boolean(true);
    const serial::Hash128 digest = h.finish();
    EXPECT_EQ(digest.lo, 0x5586c2095ee7723bull);
    EXPECT_EQ(digest.hi, 0x39a662f02b02f5ffull);
    EXPECT_EQ(digest.hex(), "39a662f02b02f5ff5586c2095ee7723b");
}

TEST(Serial, WordFastPathMatchesByteFold)
{
    // u64w must produce the digest u64v would, from any alignment.
    const u64 words[] = {0ull, 1ull, 0xdeadbeefcafef00dull,
                         ~0ull, 0x8000000000000000ull};
    serial::Hasher viaBytes, viaWords;
    for (u64 w : words) {
        viaBytes.u64v(w);
        viaWords.u64w(w);
    }
    EXPECT_EQ(viaWords.finish(), viaBytes.finish());

    // Unaligned stream (3 pending bytes): u64w falls back.
    serial::Hasher oddBytes, oddWords;
    oddBytes.bytes("odd", 3);
    oddWords.bytes("odd", 3);
    for (u64 w : words) {
        oddBytes.u64v(w);
        oddWords.u64w(w);
    }
    EXPECT_EQ(oddWords.finish(), oddBytes.finish());
}

TEST(Serial, HasherIsChunkingInvariant)
{
    const std::string data =
        "the digest must not depend on how bytes were fed";
    serial::Hasher whole;
    whole.bytes(data.data(), data.size());
    for (std::size_t cut = 1; cut < data.size(); cut += 7) {
        serial::Hasher split;
        split.bytes(data.data(), cut);
        split.bytes(data.data() + cut, data.size() - cut);
        EXPECT_EQ(split.finish(), whole.finish());
    }
}

TEST(Serial, HasherDistinguishesFraming)
{
    // ("ab", "c") vs ("a", "bc") must differ: str() folds lengths.
    serial::Hasher a;
    a.str("ab").str("c");
    serial::Hasher b;
    b.str("a").str("bc");
    EXPECT_NE(a.finish(), b.finish());
}

TEST(Serial, FourccIsLittleEndianStable)
{
    EXPECT_EQ(serial::fourcc("BINV"),
              u32{'B'} | u32{'I'} << 8 | u32{'N'} << 16 |
                  u32{'V'} << 24);
}

TEST(SerialCodec, FrequencyVectorSetRoundTrip)
{
    sp::FrequencyVectorSet fvs;
    fvs.dimension = 10;
    fvs.addInterval({{0, 0.25}, {3, 1e-300}, {9, 1.0 / 3.0}}, 12345);
    fvs.addInterval({}, 0);  // empty vector, zero length
    fvs.addInterval({{7, std::numeric_limits<double>::max()}},
                    std::numeric_limits<InstrCount>::max());

    serial::Encoder e;
    sp::encodeFvs(e, fvs);
    serial::Decoder d(e.view());
    const sp::FrequencyVectorSet back = sp::decodeFvs(d);
    d.expectEnd();

    EXPECT_EQ(back.dimension, fvs.dimension);
    EXPECT_EQ(back.vectors, fvs.vectors);
    EXPECT_EQ(back.lengths, fvs.lengths);
}

TEST(SerialCodec, SimPointResultRoundTrip)
{
    sp::SimPointResult r;
    r.k = 2;
    r.labels = {0, 1, 1, 0};
    r.phases = {{0, 0, 0.5, {0, 3}}, {1, 1, 0.5, {1, 2}}};
    r.chosenBic = -123.456789;
    r.bicByK = {-1.0, -2.5, 0.0};

    serial::Encoder e;
    sp::encodeSimPointResult(e, r);
    serial::Decoder d(e.view());
    const sp::SimPointResult back = sp::decodeSimPointResult(d);
    d.expectEnd();

    EXPECT_EQ(back.k, r.k);
    EXPECT_EQ(back.labels, r.labels);
    ASSERT_EQ(back.phases.size(), r.phases.size());
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
        EXPECT_EQ(back.phases[i].id, r.phases[i].id);
        EXPECT_EQ(back.phases[i].representative,
                  r.phases[i].representative);
        EXPECT_EQ(back.phases[i].weight, r.phases[i].weight);
        EXPECT_EQ(back.phases[i].members, r.phases[i].members);
    }
    EXPECT_EQ(back.chosenBic, r.chosenBic);
    EXPECT_EQ(back.bicByK, r.bicByK);
}

TEST(SerialCodec, BinaryRoundTripsTheRealCompilerOutput)
{
    for (const bin::Binary& binary :
         test::compileFour(test::trickyProgram())) {
        serial::Encoder e;
        bin::encodeBinary(e, binary);
        serial::Decoder d(e.view());
        const bin::Binary back = bin::decodeBinary(d);
        d.expectEnd();

        // Re-encoding the decoded binary must reproduce the bytes:
        // codec fixed point == no field was dropped or reordered.
        serial::Encoder again;
        bin::encodeBinary(again, back);
        EXPECT_EQ(again.view(), e.view());
        EXPECT_EQ(back.programName, binary.programName);
        EXPECT_EQ(back.target, binary.target);
        EXPECT_EQ(back.entryProcId, binary.entryProcId);
        EXPECT_EQ(back.blockCount(), binary.blockCount());
        EXPECT_EQ(back.markerCount(), binary.markerCount());
        bin::checkBinary(back);  // structural invariants survive
    }
}

TEST(SerialCodec, ProfilePassRoundTrip)
{
    const bin::Binary binary = compile::compileProgram(
        test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass =
        prof::runProfilePass(binary, 5000);

    serial::Encoder e;
    prof::encodeProfilePass(e, pass);
    serial::Decoder d(e.view());
    const prof::ProfilePass back = prof::decodeProfilePass(d);
    d.expectEnd();

    EXPECT_EQ(back.markers.counts, pass.markers.counts);
    EXPECT_EQ(back.markers.totalInstructions,
              pass.markers.totalInstructions);
    EXPECT_EQ(back.fliIntervals.vectors, pass.fliIntervals.vectors);
    EXPECT_EQ(back.fliIntervals.lengths, pass.fliIntervals.lengths);
    EXPECT_EQ(back.fliBoundaries, pass.fliBoundaries);
    EXPECT_EQ(back.totalInstructions, pass.totalInstructions);
}

TEST(SerialCodec, DetailedRunRoundTrip)
{
    sim::DetailedRunResult r;
    r.totals = {1000, 3500, 220};
    r.memory = {220, 180, 20, 15, 5, 2};
    r.fliIntervals = {{500, 1700}, {500, 1800}};
    r.vliIntervals = {{999, 3499}, {1, 1}};

    serial::Encoder e;
    sim::encodeDetailedRun(e, r);
    serial::Decoder d(e.view());
    const sim::DetailedRunResult back = sim::decodeDetailedRun(d);
    d.expectEnd();

    EXPECT_EQ(back.totals.instructions, r.totals.instructions);
    EXPECT_EQ(back.totals.cycles, r.totals.cycles);
    EXPECT_EQ(back.totals.memRefs, r.totals.memRefs);
    EXPECT_EQ(back.memory.refs, r.memory.refs);
    EXPECT_EQ(back.memory.dramWritebacks, r.memory.dramWritebacks);
    ASSERT_EQ(back.fliIntervals.size(), 2u);
    EXPECT_EQ(back.fliIntervals[1].cycles, 1800u);
    ASSERT_EQ(back.vliIntervals.size(), 2u);
    EXPECT_EQ(back.vliIntervals[0].instrs, 999u);
}

TEST(SerialCodec, MalformedEnumRejected)
{
    serial::Encoder e;
    e.str("prog");
    e.varint(99);  // Arch out of range
    serial::Decoder d(e.view());
    EXPECT_THROW(bin::decodeBinary(d), serial::DecodeError);
}
