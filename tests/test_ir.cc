/**
 * @file
 * Unit tests for the program IR, the builder DSL and validation.
 */

#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "test_support.hh"

using namespace xbsp;
using namespace xbsp::ir;

TEST(IrBuilder, LinesUniqueAndIncreasing)
{
    const Program p = test::tinyProgram();
    std::vector<u32> lines;
    std::function<void(const std::vector<Stmt>&)> walk =
        [&](const std::vector<Stmt>& stmts) {
            for (const auto& stmt : stmts) {
                if (const auto* blk = std::get_if<Block>(&stmt)) {
                    lines.push_back(blk->line);
                } else if (const auto* loop = std::get_if<Loop>(&stmt)) {
                    lines.push_back(loop->line);
                    walk(loop->body);
                } else if (const auto* call = std::get_if<Call>(&stmt)) {
                    lines.push_back(call->line);
                }
            }
        };
    for (const auto& proc : p.procedures)
        walk(proc.body);
    std::set<u32> unique(lines.begin(), lines.end());
    EXPECT_EQ(unique.size(), lines.size());
    for (u32 line : lines)
        EXPECT_GT(line, 0u);
}

TEST(IrBuilder, SourceInstructionCount)
{
    const Program p = test::tinyProgram();
    // setup: 50*20; per outer iter: work 100*30 + tail 8; outer 10x.
    EXPECT_EQ(sourceInstructionCount(p),
              50u * 20 + 10u * (100 * 30 + 8));
}

TEST(IrBuilder, FindProcedure)
{
    const Program p = test::tinyProgram();
    EXPECT_NE(p.findProcedure("work"), nullptr);
    EXPECT_EQ(p.findProcedure("nope"), nullptr);
}

TEST(IrBuilder, PatternHelpers)
{
    const MemPattern s = stridePattern(3, 1_MiB, 16, 0.4, 0.7);
    EXPECT_EQ(s.kind, MemPatternKind::Stride);
    EXPECT_EQ(s.regionId, 3u);
    EXPECT_EQ(s.workingSet, 1u << 20);
    EXPECT_EQ(s.stride, 16u);
    EXPECT_DOUBLE_EQ(s.writeFraction, 0.4);
    EXPECT_DOUBLE_EQ(s.pointerScale, 0.7);

    const MemPattern r = randomPattern(1, 4_KiB);
    EXPECT_EQ(r.kind, MemPatternKind::RandomInSet);
    const MemPattern c = chasePattern(1, 4_KiB);
    EXPECT_EQ(c.kind, MemPatternKind::PointerChase);
    const MemPattern g = gatherPattern(1, 4_KiB, 0.8);
    EXPECT_EQ(g.kind, MemPatternKind::Gather);
    EXPECT_DOUBLE_EQ(g.hotFraction, 0.8);
}

TEST(IrBuilder, WithDrift)
{
    const MemPattern p =
        withDrift(stridePattern(1, 4_KiB), 500, 0.25);
    EXPECT_EQ(p.driftPeriod, 500u);
    EXPECT_DOUBLE_EQ(p.driftAmp, 0.25);
}

TEST(IrValidate, MissingEntryFatal)
{
    Program p;
    p.name = "bad";
    p.entry = "main";
    Procedure proc;
    proc.name = "notmain";
    p.procedures.push_back(proc);
    EXPECT_EXIT(validate(p), ::testing::ExitedWithCode(1),
                "no entry procedure");
}

TEST(IrValidate, UnresolvedCallFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").call("ghost");
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "undefined procedure");
}

TEST(IrValidate, RecursionFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").call("a");
    b.procedure("a").call("b");
    b.procedure("b").call("a");
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "recursive");
}

TEST(IrValidate, ZeroTripLoopFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").loop(0, [](StmtSeq& s) { s.compute(1); });
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "trip");
}

TEST(IrValidate, MemOpsWithoutPatternFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").block(10, 5);
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "no memory pattern");
}

TEST(IrValidate, MemOpsExceedInstrsFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").block(4, 5, stridePattern(1, 4_KiB));
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "more");
}

TEST(IrValidate, DuplicateProcedureFatal)
{
    ProgramBuilder b("bad");
    b.procedure("main").compute(1);
    EXPECT_EXIT(b.procedure("main"), ::testing::ExitedWithCode(1),
                "declared twice");
}

TEST(IrValidate, TinyAndTrickyValidate)
{
    // Building already validates; reaching here means success.
    (void)test::tinyProgram();
    (void)test::trickyProgram();
    SUCCEED();
}
