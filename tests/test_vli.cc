/**
 * @file
 * Unit tests for variable-length-interval construction and
 * cross-binary boundary tracking.
 */

#include <gtest/gtest.h>

#include "core/vli.hh"
#include "test_support.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

struct VliFixture
{
    std::vector<bin::Binary> binaries;
    std::vector<prof::MarkerProfile> profiles;
    core::MappableSet set;
    core::VliBuild build;
    InstrCount target;
};

VliFixture
makeSetup(const ir::Program& program, InstrCount target)
{
    VliFixture s;
    s.target = target;
    s.binaries = test::compileFour(program);
    for (const auto& binary : s.binaries)
        s.profiles.push_back(test::profileMarkers(binary));
    std::vector<const bin::Binary*> bins;
    std::vector<const prof::MarkerProfile*> profs;
    for (std::size_t i = 0; i < s.binaries.size(); ++i) {
        bins.push_back(&s.binaries[i]);
        profs.push_back(&s.profiles[i]);
    }
    s.set = core::findMappablePoints(bins, profs);
    s.build =
        core::buildVliPartition(s.binaries[0], s.set, 0, target);
    return s;
}

} // namespace

TEST(Vli, IntervalsAtLeastTargetExceptLast)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    const auto& lengths = s.build.intervals.lengths;
    ASSERT_GT(lengths.size(), 2u);
    for (std::size_t i = 0; i + 1 < lengths.size(); ++i)
        EXPECT_GE(lengths[i], s.target);
}

TEST(Vli, LengthsSumToTotal)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    InstrCount sum = 0;
    for (InstrCount len : s.build.intervals.lengths)
        sum += len;
    EXPECT_EQ(sum, s.build.totalInstructions);
}

TEST(Vli, BoundariesConsistentWithIntervals)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    EXPECT_EQ(s.build.partition.intervalCount(),
              s.build.intervals.size());
    for (const core::Boundary& boundary : s.build.partition.boundaries) {
        ASSERT_LT(boundary.pointIdx, s.set.points.size());
        EXPECT_GE(boundary.fireCount, 1u);
        EXPECT_LE(boundary.fireCount,
                  s.set.points[boundary.pointIdx].execCount);
    }
}

TEST(Vli, BbvSumsMatchLengths)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    for (std::size_t i = 0; i < s.build.intervals.size(); ++i) {
        EXPECT_NEAR(sp::sparseSum(s.build.intervals.vectors[i]),
                    static_cast<double>(s.build.intervals.lengths[i]),
                    1e-6);
    }
}

TEST(Vli, TrackerCrossesAllBoundariesInEveryBinary)
{
    const VliFixture s = makeSetup(test::trickyProgram(), 2000);
    ASSERT_GT(s.build.partition.boundaries.size(), 0u);
    for (std::size_t b = 0; b < s.binaries.size(); ++b) {
        exec::Engine engine(s.binaries[b]);
        std::vector<InstrCount> cuts;
        core::BoundaryTracker tracker(
            s.set, b, s.build.partition, [&](std::size_t idx) {
                EXPECT_EQ(idx, cuts.size());
                cuts.push_back(engine.instructionsExecuted());
            });
        engine.addObserver(&tracker, {false, false, true});
        engine.run();
        EXPECT_TRUE(tracker.finished()) << s.binaries[b].displayName();
        // Boundary positions strictly increase.
        for (std::size_t i = 1; i < cuts.size(); ++i)
            EXPECT_GT(cuts[i], cuts[i - 1]);
        EXPECT_LE(cuts.back(), engine.instructionsExecuted());
    }
}

TEST(Vli, MappedIntervalsShrinkInOptimizedBinaries)
{
    // The primary (32u) executes ~2.4x the instructions of 32o, so
    // the same semantic intervals are smaller there — the effect the
    // paper's Figure 2 discussion explains.
    const VliFixture s = makeSetup(test::tinyProgram(), 4000);
    exec::Engine engine(s.binaries[1]); // 32o
    InstrCount last = 0;
    std::vector<InstrCount> sizes;
    core::BoundaryTracker tracker(
        s.set, 1, s.build.partition, [&](std::size_t) {
            sizes.push_back(engine.instructionsExecuted() - last);
            last = engine.instructionsExecuted();
        });
    engine.addObserver(&tracker, {false, false, true});
    engine.run();
    ASSERT_FALSE(sizes.empty());
    double avg = 0.0;
    for (InstrCount size : sizes)
        avg += static_cast<double>(size);
    avg /= static_cast<double>(sizes.size());
    EXPECT_LT(avg, 0.7 * static_cast<double>(s.target));
}

TEST(Vli, PrimaryTrackerReproducesOwnPartition)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    exec::Engine engine(s.binaries[0]);
    std::vector<InstrCount> cuts;
    core::BoundaryTracker tracker(
        s.set, 0, s.build.partition, [&](std::size_t) {
            cuts.push_back(engine.instructionsExecuted());
        });
    engine.addObserver(&tracker, {false, false, true});
    engine.run();
    ASSERT_EQ(cuts.size(), s.build.partition.boundaries.size());
    InstrCount cumulative = 0;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        cumulative += s.build.intervals.lengths[i];
        EXPECT_EQ(cuts[i], cumulative);
    }
}

TEST(Vli, InvalidBoundaryPanics)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    core::VliPartition bogus;
    bogus.boundaries.push_back(
        core::Boundary{0, s.set.points[0].execCount + 1});
    EXPECT_DEATH(core::BoundaryTracker(s.set, 0, bogus,
                                       [](std::size_t) {}),
                 "outside point");
    core::VliPartition outOfRange;
    outOfRange.boundaries.push_back(
        core::Boundary{static_cast<u32>(s.set.points.size()), 1});
    EXPECT_DEATH(core::BoundaryTracker(s.set, 0, outOfRange,
                                       [](std::size_t) {}),
                 "out of range");
}

TEST(Vli, ZeroTargetFatal)
{
    const VliFixture s = makeSetup(test::tinyProgram(), 5000);
    EXPECT_EXIT(
        (void)core::buildVliPartition(s.binaries[0], s.set, 0, 0),
        ::testing::ExitedWithCode(1), "target");
}

TEST(Vli, ApplousStyleSparseMarkersGiveLargeIntervals)
{
    // With only coarse mappable markers (applu's situation), the VLI
    // intervals grow well beyond the target.
    const ir::Program applu = workloads::makeApplu(0.15);
    const VliFixture s = makeSetup(applu, 20000);
    double avg = static_cast<double>(s.build.totalInstructions) /
                 static_cast<double>(s.build.intervals.size());
    EXPECT_GT(avg, 1.5 * 20000.0);
}
