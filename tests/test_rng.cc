/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hh"

using namespace xbsp;

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123), c(124);
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        const u64 va = a.next();
        EXPECT_EQ(va, b.next());
        anyDiff |= va != c.next();
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (u64 bound : {1ull, 2ull, 3ull, 17ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(9);
    std::set<u64> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const u64 v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        sawLo |= v == 5;
        sawHi |= v == 9;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sumSq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFraction)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::vector<int> sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, v);
}

TEST(Rng, ForkIndependentAndStable)
{
    Rng parent(31);
    Rng childA = parent.fork(1);
    Rng childA2 = parent.fork(1);
    Rng childB = parent.fork(2);
    bool differs = false;
    for (int i = 0; i < 50; ++i) {
        const u64 va = childA.next();
        EXPECT_EQ(va, childA2.next());
        differs |= va != childB.next();
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, HashMixAvalanche)
{
    // Flipping one input bit should flip roughly half the output bits.
    int totalFlips = 0;
    for (int bit = 0; bit < 64; ++bit) {
        const u64 a = hashMix(0x1234567890abcdefull);
        const u64 b = hashMix(0x1234567890abcdefull ^ (1ull << bit));
        totalFlips += __builtin_popcountll(a ^ b);
    }
    const double avg = totalFlips / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(BoundedBelow, ModMatchesHardwareRemainderExactly)
{
    // Adversarial bounds (tiny, powers of two, odd giants near every
    // power-of-two boundary) crossed with adversarial values.
    std::vector<u64> bounds = {1, 2, 3, 5, 7, 63, 64, 65, 1536};
    for (int p = 4; p < 64; p += 7) {
        bounds.push_back((1ull << p) - 1);
        bounds.push_back(1ull << p);
        bounds.push_back((1ull << p) + 1);
    }
    bounds.push_back(~0ull);
    bounds.push_back(~0ull - 1);
    Rng rng(99);
    for (const u64 bound : bounds) {
        BoundedBelow draw(bound);
        std::vector<u64> values = {0,         1,         bound - 1,
                                   bound,     bound + 1, ~0ull,
                                   ~0ull - 1, bound * 2, bound * 3 - 1};
        for (int i = 0; i < 2000; ++i)
            values.push_back(rng.next());
        for (const u64 v : values)
            ASSERT_EQ(draw.mod(v), v % bound)
                << "value " << v << " bound " << bound;
    }
}

TEST(BoundedBelow, DrawSequenceIdenticalToNextBelow)
{
    // Twin generators: prepared draws must consume the same raw
    // stream and produce the same values as per-call nextBelow.
    for (const u64 bound :
         {u64(1), u64(3), u64(1536), u64(12289),
          (u64(1) << 33) + 7, (u64(1) << 62) + 11}) {
        Rng a(1234), b(1234);
        BoundedBelow draw(bound);
        for (int i = 0; i < 20000; ++i)
            ASSERT_EQ(draw.draw(a), b.nextBelow(bound)) << bound;
        EXPECT_EQ(a.next(), b.next()) << "raw streams diverged";
    }
}
