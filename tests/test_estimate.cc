/**
 * @file
 * Unit tests for the sampled-estimation math (weights, per-phase
 * bias, speedup error) on hand-constructed inputs with known answers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/estimate.hh"

using namespace xbsp;

namespace
{

/** Clustering: intervals {0,2} -> phase 0 (rep 2), {1,3} -> 1 (rep 1). */
sp::SimPointResult
handmadeClustering()
{
    sp::SimPointResult result;
    result.k = 2;
    result.labels = {0, 1, 0, 1};
    sp::Phase p0;
    p0.id = 0;
    p0.representative = 2;
    p0.members = {0, 2};
    sp::Phase p1;
    p1.id = 1;
    p1.representative = 1;
    p1.members = {1, 3};
    result.phases = {p0, p1};
    return result;
}

std::vector<sim::IntervalStats>
handmadeIntervals()
{
    // instrs, cycles (cpi): 100@2.0, 100@5.0, 100@3.0, 300@6.0
    return {{100, 200}, {100, 500}, {100, 300}, {300, 1800}};
}

} // namespace

TEST(Estimate, WeightsTruthAndSpCpi)
{
    const sim::BinaryEstimate est = sim::estimateSampled(
        handmadeClustering(), handmadeIntervals());

    EXPECT_EQ(est.totalInstrs, 600u);
    EXPECT_DOUBLE_EQ(est.trueCycles, 2800.0);
    EXPECT_NEAR(est.trueCpi, 2800.0 / 600.0, 1e-12);

    ASSERT_EQ(est.phases.size(), 2u);
    const auto& p0 = est.phases[0];
    EXPECT_NEAR(p0.weight, 200.0 / 600.0, 1e-12);
    EXPECT_NEAR(p0.trueCpi, 500.0 / 200.0, 1e-12); // (200+300)/200
    EXPECT_DOUBLE_EQ(p0.spCpi, 3.0);               // rep interval 2
    EXPECT_NEAR(p0.bias, (3.0 - 2.5) / 2.5, 1e-12);

    const auto& p1 = est.phases[1];
    EXPECT_NEAR(p1.weight, 400.0 / 600.0, 1e-12);
    EXPECT_NEAR(p1.trueCpi, 2300.0 / 400.0, 1e-12);
    EXPECT_DOUBLE_EQ(p1.spCpi, 5.0);

    const double expectedEstCpi =
        (200.0 / 600.0) * 3.0 + (400.0 / 600.0) * 5.0;
    EXPECT_NEAR(est.estCpi, expectedEstCpi, 1e-12);
    EXPECT_NEAR(est.estCycles, expectedEstCpi * 600.0, 1e-9);
    EXPECT_NEAR(est.cpiError,
                std::fabs((est.trueCpi - est.estCpi) / est.trueCpi),
                1e-12);
}

TEST(Estimate, PerfectRepresentativesGiveZeroError)
{
    sp::SimPointResult clustering = handmadeClustering();
    // Make every interval in each phase identical.
    std::vector<sim::IntervalStats> intervals{
        {100, 300}, {100, 500}, {100, 300}, {100, 500}};
    const sim::BinaryEstimate est =
        sim::estimateSampled(clustering, intervals);
    EXPECT_NEAR(est.cpiError, 0.0, 1e-12);
    for (const auto& phase : est.phases)
        EXPECT_NEAR(phase.bias, 0.0, 1e-12);
}

TEST(Estimate, PhasesByWeightSorted)
{
    const sim::BinaryEstimate est = sim::estimateSampled(
        handmadeClustering(), handmadeIntervals());
    const auto sorted = est.phasesByWeight();
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_GE(sorted[0].weight, sorted[1].weight);
    EXPECT_EQ(sorted[0].phaseId, 1u);
}

TEST(Estimate, SizeMismatchPanics)
{
    std::vector<sim::IntervalStats> tooFew{{100, 200}};
    EXPECT_DEATH((void)sim::estimateSampled(handmadeClustering(),
                                            tooFew),
                 "intervals");
}

TEST(Estimate, SpeedupMath)
{
    EXPECT_DOUBLE_EQ(sim::speedup(200.0, 100.0), 2.0);
    // true = 2.0, est = 2.2 -> 10% error.
    EXPECT_NEAR(sim::speedupError(200.0, 100.0, 220.0, 100.0), 0.1,
                1e-12);
    // Error is symmetric in formulation |(t-e)/t|.
    EXPECT_NEAR(sim::speedupError(200.0, 100.0, 180.0, 100.0), 0.1,
                1e-12);
}

TEST(Estimate, SpeedupZeroDenominatorPanics)
{
    EXPECT_DEATH((void)sim::speedup(1.0, 0.0), "zero cycles");
}
