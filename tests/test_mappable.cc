/**
 * @file
 * Unit tests for the cross-binary mappable-point matcher — the heart
 * of the paper's contribution.
 */

#include <gtest/gtest.h>

#include "core/mappable.hh"
#include "test_support.hh"

using namespace xbsp;

namespace
{

struct Matched
{
    std::vector<bin::Binary> binaries;
    std::vector<prof::MarkerProfile> profiles;
    core::MappableSet set;
};

Matched
matchProgram(const ir::Program& program)
{
    Matched m;
    m.binaries = test::compileFour(program);
    for (const auto& binary : m.binaries)
        m.profiles.push_back(test::profileMarkers(binary));
    std::vector<const bin::Binary*> bins;
    std::vector<const prof::MarkerProfile*> profs;
    for (std::size_t i = 0; i < m.binaries.size(); ++i) {
        bins.push_back(&m.binaries[i]);
        profs.push_back(&m.profiles[i]);
    }
    m.set = core::findMappablePoints(bins, profs);
    return m;
}

const core::MappablePoint*
findPoint(const core::MappableSet& set, bin::MarkerKind kind,
          const std::string& symbol)
{
    for (const auto& point : set.points) {
        if (point.key.kind == kind && point.key.symbol == symbol)
            return &point;
    }
    return nullptr;
}

const core::RejectedKey*
findRejected(const core::MappableSet& set, bin::MarkerKind kind,
             const std::string& symbol)
{
    for (const auto& rejected : set.rejected) {
        if (rejected.key.kind == kind &&
            rejected.key.symbol == symbol) {
            return &rejected;
        }
    }
    return nullptr;
}

} // namespace

TEST(Mappable, NonInlinedProceduresMatchByName)
{
    const Matched m = matchProgram(test::tinyProgram());
    for (const char* name : {"main", "setup", "work", "tail"}) {
        const auto* point =
            findPoint(m.set, bin::MarkerKind::ProcEntry, name);
        ASSERT_NE(point, nullptr) << name;
        EXPECT_EQ(point->markerIds.size(), 4u);
        for (const auto& group : point->markerIds)
            EXPECT_EQ(group.size(), 1u);
    }
    const auto* work =
        findPoint(m.set, bin::MarkerKind::ProcEntry, "work");
    EXPECT_EQ(work->execCount, 10u);
}

TEST(Mappable, CountsEqualAcrossBinariesByConstruction)
{
    const Matched m = matchProgram(test::tinyProgram());
    for (const auto& point : m.set.points) {
        for (std::size_t b = 0; b < 4; ++b) {
            u64 count = 0;
            for (u32 marker : point.markerIds[b])
                count += m.profiles[b].counts[marker];
            EXPECT_EQ(count, point.execCount)
                << point.key.describe() << " in binary " << b;
        }
    }
}

TEST(Mappable, InlinedSymbolRejectedAsMissing)
{
    const Matched m = matchProgram(test::trickyProgram());
    EXPECT_EQ(findPoint(m.set, bin::MarkerKind::ProcEntry, "helper"),
              nullptr);
    const auto* rejected =
        findRejected(m.set, bin::MarkerKind::ProcEntry, "helper");
    ASSERT_NE(rejected, nullptr);
    EXPECT_EQ(rejected->reason,
              core::RejectReason::MissingInSomeBinary);
}

TEST(Mappable, PartialInlineRejectedAsCountMismatch)
{
    const Matched m = matchProgram(test::trickyProgram());
    EXPECT_EQ(
        findPoint(m.set, bin::MarkerKind::ProcEntry, "sometimes"),
        nullptr);
    const auto* rejected =
        findRejected(m.set, bin::MarkerKind::ProcEntry, "sometimes");
    ASSERT_NE(rejected, nullptr);
    EXPECT_EQ(rejected->reason, core::RejectReason::CountMismatch);
    // Counts visible for diagnostics: 10 in unoptimized, 5 optimized.
    EXPECT_EQ(rejected->countsPerBinary[0], 10u);
    EXPECT_EQ(rejected->countsPerBinary[1], 5u);
}

TEST(Mappable, InlinedCloneGroupsAggregateAndMatch)
{
    // helper's loop survives inlining via its source line; the two
    // clones in the optimized binaries form one marker group.
    const Matched m = matchProgram(test::trickyProgram());
    const core::MappablePoint* loopPoint = nullptr;
    for (const auto& point : m.set.points) {
        if (point.key.kind == bin::MarkerKind::LoopBranch &&
            point.execCount == 5u * 2 * 8) { // 2 sites x 5 outer x 8
            loopPoint = &point;
        }
    }
    ASSERT_NE(loopPoint, nullptr)
        << "helper's loop branch should stay mappable";
    EXPECT_EQ(loopPoint->markerIds[0].size(), 1u); // 32u: one marker
    EXPECT_EQ(loopPoint->markerIds[1].size(), 2u); // 32o: two clones
}

TEST(Mappable, UnrolledBranchRejectedEntryKept)
{
    const Matched m = matchProgram(test::trickyProgram());
    // trips 16 unrolled by 4: branch counts 3200 vs 800.
    bool entryMapped = false, branchMapped = false;
    for (const auto& point : m.set.points) {
        if (point.key.kind == bin::MarkerKind::LoopEntry &&
            point.execCount == 200u) { // 5 x 40 entries
            entryMapped = true;
        }
        if (point.key.kind == bin::MarkerKind::LoopBranch &&
            (point.execCount == 3200u || point.execCount == 800u)) {
            branchMapped = true;
        }
    }
    EXPECT_TRUE(entryMapped);
    EXPECT_FALSE(branchMapped);
}

TEST(Mappable, SplitLoopRejectedEntirely)
{
    const Matched m = matchProgram(test::trickyProgram());
    // split's loop: entries 5 vs 10, branches 300 vs 600.
    for (const auto& point : m.set.points) {
        EXPECT_NE(point.execCount, 300u);
        EXPECT_NE(point.execCount, 600u);
    }
    bool sawMismatch = false;
    for (const auto& rejected : m.set.rejected) {
        if (rejected.reason == core::RejectReason::CountMismatch &&
            rejected.key.kind == bin::MarkerKind::LoopBranch &&
            rejected.countsPerBinary[0] == 300u) {
            sawMismatch = true;
            EXPECT_EQ(rejected.countsPerBinary[1], 600u);
        }
    }
    EXPECT_TRUE(sawMismatch);
}

TEST(Mappable, MarkerToPointInverseMapping)
{
    const Matched m = matchProgram(test::tinyProgram());
    for (u32 p = 0; p < m.set.points.size(); ++p) {
        for (std::size_t b = 0; b < 4; ++b) {
            for (u32 marker : m.set.points[p].markerIds[b])
                EXPECT_EQ(m.set.pointFor(b, marker), p);
        }
    }
    // Unmapped markers resolve to invalidId.
    u64 mapped = 0;
    for (std::size_t b = 0; b < 4; ++b) {
        for (u32 marker = 0; marker < m.binaries[b].markerCount();
             ++marker) {
            if (m.set.pointFor(b, marker) != invalidId)
                ++mapped;
        }
    }
    u64 expected = 0;
    for (const auto& point : m.set.points) {
        for (const auto& group : point.markerIds)
            expected += group.size();
    }
    EXPECT_EQ(mapped, expected);
}

TEST(Mappable, SingleBinaryMatchesItself)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::MarkerProfile profile = test::profileMarkers(binary);
    const core::MappableSet set =
        core::findMappablePoints({&binary}, {&profile});
    // Every executed marker maps (line-0 markers aside).
    for (u32 m = 0; m < binary.markerCount(); ++m) {
        const bool hasDebugInfo =
            binary.markers[m].kind == bin::MarkerKind::ProcEntry ||
            binary.markers[m].line != 0;
        if (profile.counts[m] > 0 && hasDebugInfo) {
            EXPECT_NE(set.pointFor(0, m), invalidId);
        }
    }
}

TEST(Mappable, OptimizedPairMapsPartialInlineConsistently)
{
    // Between 32o and 64o alone, the Partial helper has consistent
    // counts (both inline the same sites) and becomes mappable — a
    // subtlety of the alternating-site model.
    const ir::Program p = test::trickyProgram();
    const bin::Binary b32o =
        compile::compileProgram(p, bin::target32o);
    const bin::Binary b64o =
        compile::compileProgram(p, bin::target64o);
    const auto prof32 = test::profileMarkers(b32o);
    const auto prof64 = test::profileMarkers(b64o);
    const core::MappableSet set = core::findMappablePoints(
        {&b32o, &b64o}, {&prof32, &prof64});
    bool sometimesMapped = false;
    for (const auto& point : set.points) {
        sometimesMapped |=
            point.key.kind == bin::MarkerKind::ProcEntry &&
            point.key.symbol == "sometimes";
    }
    EXPECT_TRUE(sometimesMapped);
}

TEST(Mappable, MismatchedInputsFatal)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::MarkerProfile profile = test::profileMarkers(binary);
    EXPECT_EXIT((void)core::findMappablePoints({}, {}),
                ::testing::ExitedWithCode(1), "at least one");
    EXPECT_EXIT(
        (void)core::findMappablePoints({&binary, &binary}, {&profile}),
        ::testing::ExitedWithCode(1), "profiles");
}

TEST(Mappable, DescribeKeys)
{
    core::MappableKey proc{bin::MarkerKind::ProcEntry, "main", 0};
    EXPECT_EQ(proc.describe(), "proc-entry main");
    core::MappableKey loop{bin::MarkerKind::LoopBranch, "", 17};
    EXPECT_EQ(loop.describe(), "loop-branch @17");
}
