/**
 * @file
 * Unit tests for the SimPoint file-format interoperability layer.
 */

#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "simpoint/io.hh"
#include "util/rng.hh"

using namespace xbsp;
using namespace xbsp::sp;

namespace
{

FrequencyVectorSet
sampleFvs()
{
    FrequencyVectorSet fvs;
    fvs.dimension = 20;
    fvs.addInterval(SparseVec{{0, 10.0}, {5, 2.5}}, 1000);
    fvs.addInterval(SparseVec{{3, 7.0}}, 2000);
    fvs.addInterval(SparseVec{{0, 1.0}, {19, 4.0}}, 1500);
    return fvs;
}

} // namespace

TEST(SimPointIo, BbvRoundTrip)
{
    const FrequencyVectorSet original = sampleFvs();
    std::stringstream ss;
    writeBbvFile(ss, original);
    const FrequencyVectorSet parsed = readBbvFile(ss, 20);
    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.dimension, 20u);
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(parsed.vectors[i].size(), original.vectors[i].size());
        for (std::size_t j = 0; j < original.vectors[i].size(); ++j) {
            EXPECT_EQ(parsed.vectors[i][j].first,
                      original.vectors[i][j].first);
            EXPECT_DOUBLE_EQ(parsed.vectors[i][j].second,
                             original.vectors[i][j].second);
        }
    }
}

TEST(SimPointIo, BbvFormatIsOneBased)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 3;
    fvs.addInterval(SparseVec{{0, 2.0}}, 1);
    std::stringstream ss;
    writeBbvFile(ss, fvs);
    EXPECT_EQ(ss.str(), "T:1:2 \n");
}

TEST(SimPointIo, LengthsRoundTrip)
{
    const FrequencyVectorSet original = sampleFvs();
    std::stringstream ss;
    writeLengthsFile(ss, original);
    FrequencyVectorSet parsed = sampleFvs();
    parsed.lengths = {1, 1, 1};
    readLengthsFile(ss, parsed);
    EXPECT_EQ(parsed.lengths, original.lengths);
}

TEST(SimPointIo, LengthsCountMismatchFatal)
{
    FrequencyVectorSet fvs = sampleFvs();
    std::stringstream ss("5 6"); // two lengths, three intervals
    EXPECT_EXIT(readLengthsFile(ss, fvs),
                ::testing::ExitedWithCode(1), "entries");
}

TEST(SimPointIo, BadBbvLinesFatal)
{
    std::stringstream noPrefix("X:1:2\n");
    EXPECT_EXIT((void)readBbvFile(noPrefix),
                ::testing::ExitedWithCode(1), "expected 'T'");
    std::stringstream zeroIdx("T:0:2\n");
    EXPECT_EXIT((void)readBbvFile(zeroIdx),
                ::testing::ExitedWithCode(1), "dimension index");
}

TEST(SimPointIo, SimpointFilesRoundTrip)
{
    // Cluster on synthetic data, write all three files, read back.
    FrequencyVectorSet fvs;
    fvs.dimension = 16;
    Rng rng(4);
    for (int i = 0; i < 40; ++i) {
        const u32 behaviour = i % 3;
        SparseVec vec{{behaviour * 5,
                       50.0 + rng.nextDouble(-1.0, 1.0)},
                      {behaviour * 5 + 1, 25.0}};
        fvs.addInterval(std::move(vec), 1000);
    }
    SimPointOptions options;
    options.maxK = 6;
    const SimPointResult original = pickSimulationPoints(fvs, options);

    std::stringstream sims, weights, labels;
    writeSimpointsFile(sims, original);
    writeWeightsFile(weights, original);
    writeLabelsFile(labels, original);

    const SimPointResult parsed =
        readSimPointFiles(sims, weights, labels);
    EXPECT_EQ(parsed.labels, original.labels);
    ASSERT_EQ(parsed.phases.size(), original.phases.size());
    for (std::size_t p = 0; p < parsed.phases.size(); ++p) {
        EXPECT_EQ(parsed.phases[p].id, original.phases[p].id);
        EXPECT_EQ(parsed.phases[p].representative,
                  original.phases[p].representative);
        EXPECT_NEAR(parsed.phases[p].weight,
                    original.phases[p].weight, 1e-6);
        EXPECT_EQ(parsed.phases[p].members,
                  original.phases[p].members);
    }
}

TEST(SimPointIo, InconsistentFilesFatal)
{
    std::stringstream sims("0 0\n"), weights("0.5 0\n1.0 1\n"),
        labels("0\n0\n");
    EXPECT_EXIT((void)readSimPointFiles(sims, weights, labels),
                ::testing::ExitedWithCode(1), "phases");

    std::stringstream sims2("3 0\n"), weights2("1.0 0\n"),
        labels2("0\n0\n");
    EXPECT_EXIT((void)readSimPointFiles(sims2, weights2, labels2),
                ::testing::ExitedWithCode(1), "representative");
}

TEST(SimPointIo, EmptyLabelsFatal)
{
    std::stringstream sims("0 0\n"), weights("1.0 0\n"), labels("");
    EXPECT_EXIT((void)readSimPointFiles(sims, weights, labels),
                ::testing::ExitedWithCode(1), "labels file");
}

// ---------------------------------------------------------------------
// Round-trip property tests for the text BBV format: randomized sets
// with extreme weights, empty vectors and duplicate block ids must
// all survive write -> read bit-exactly (the writer emits %.17g,
// which strtod recovers exactly).

namespace
{

FrequencyVectorSet
randomFvs(u64 seed)
{
    Rng rng(seed);
    FrequencyVectorSet fvs;
    fvs.dimension = 64;
    const std::size_t intervals = 1 + rng.nextBelow(12);
    for (std::size_t i = 0; i < intervals; ++i) {
        SparseVec vec;
        const std::size_t entries = rng.nextBelow(8);  // 0 = empty
        u32 idx = 0;
        for (std::size_t j = 0; j < entries; ++j) {
            idx += 1 + static_cast<u32>(rng.nextBelow(8));
            double value = 0;
            switch (rng.nextBelow(5)) {
              case 0:
                value = rng.nextDouble() * 1e300;  // huge
                break;
              case 1:
                value = rng.nextDouble() * 1e-300;  // tiny
                break;
              case 2:
                value = 5e-324;  // smallest denormal
                break;
              case 3:
                value = static_cast<double>(rng.next());  // integral
                break;
              default:
                value = rng.nextDouble();  // ordinary fraction
            }
            vec.emplace_back(idx, value);
        }
        fvs.addInterval(std::move(vec),
                        rng.nextBelow(1u << 20));
    }
    return fvs;
}

} // namespace

TEST(SimPointIoProperty, RandomizedBbvRoundTripsBitExactly)
{
    for (u64 seed = 1; seed <= 25; ++seed) {
        const FrequencyVectorSet original = randomFvs(seed);
        std::stringstream ss;
        writeBbvFile(ss, original);
        const FrequencyVectorSet parsed =
            readBbvFile(ss, original.dimension);
        ASSERT_EQ(parsed.size(), original.size()) << "seed " << seed;
        // Bitwise equality: pair<u32,double> compares doubles with
        // ==, which is exactly the contract (%.17g is lossless).
        EXPECT_EQ(parsed.vectors, original.vectors)
            << "seed " << seed;
    }
}

TEST(SimPointIoProperty, EmptyVectorsSurvive)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 4;
    fvs.addInterval(SparseVec{}, 10);
    fvs.addInterval(SparseVec{{2, 1.5}}, 20);
    fvs.addInterval(SparseVec{}, 30);
    std::stringstream ss;
    writeBbvFile(ss, fvs);
    const FrequencyVectorSet parsed = readBbvFile(ss, 4);
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_TRUE(parsed.vectors[0].empty());
    EXPECT_EQ(parsed.vectors[1], fvs.vectors[1]);
    EXPECT_TRUE(parsed.vectors[2].empty());
}

TEST(SimPointIoProperty, DuplicateBlockIdsAccumulateOnRead)
{
    // A hand-written line with the same (one-based) id three times:
    // frequency semantics say the values add up.
    std::stringstream ss("T:5:1.5 :2:10 :5:2.25 :5:0.25 \n");
    const FrequencyVectorSet parsed = readBbvFile(ss, 8);
    ASSERT_EQ(parsed.size(), 1u);
    const SparseVec expected{{1, 10.0}, {4, 4.0}};
    EXPECT_EQ(parsed.vectors[0], expected);
}

TEST(SimPointIoProperty, ExtremeWeightsRoundTrip)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 3;
    fvs.addInterval(
        SparseVec{{0, std::numeric_limits<double>::max()},
                  {1, std::numeric_limits<double>::denorm_min()},
                  {2, 1.0 / 3.0}},
        1);
    std::stringstream ss;
    writeBbvFile(ss, fvs);
    const FrequencyVectorSet parsed = readBbvFile(ss, 3);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed.vectors[0], fvs.vectors[0]);
}
