/**
 * @file
 * Unit tests for the SimPoint file-format interoperability layer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "simpoint/io.hh"

using namespace xbsp;
using namespace xbsp::sp;

namespace
{

FrequencyVectorSet
sampleFvs()
{
    FrequencyVectorSet fvs;
    fvs.dimension = 20;
    fvs.addInterval(SparseVec{{0, 10.0}, {5, 2.5}}, 1000);
    fvs.addInterval(SparseVec{{3, 7.0}}, 2000);
    fvs.addInterval(SparseVec{{0, 1.0}, {19, 4.0}}, 1500);
    return fvs;
}

} // namespace

TEST(SimPointIo, BbvRoundTrip)
{
    const FrequencyVectorSet original = sampleFvs();
    std::stringstream ss;
    writeBbvFile(ss, original);
    const FrequencyVectorSet parsed = readBbvFile(ss, 20);
    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.dimension, 20u);
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(parsed.vectors[i].size(), original.vectors[i].size());
        for (std::size_t j = 0; j < original.vectors[i].size(); ++j) {
            EXPECT_EQ(parsed.vectors[i][j].first,
                      original.vectors[i][j].first);
            EXPECT_DOUBLE_EQ(parsed.vectors[i][j].second,
                             original.vectors[i][j].second);
        }
    }
}

TEST(SimPointIo, BbvFormatIsOneBased)
{
    FrequencyVectorSet fvs;
    fvs.dimension = 3;
    fvs.addInterval(SparseVec{{0, 2.0}}, 1);
    std::stringstream ss;
    writeBbvFile(ss, fvs);
    EXPECT_EQ(ss.str(), "T:1:2 \n");
}

TEST(SimPointIo, LengthsRoundTrip)
{
    const FrequencyVectorSet original = sampleFvs();
    std::stringstream ss;
    writeLengthsFile(ss, original);
    FrequencyVectorSet parsed = sampleFvs();
    parsed.lengths = {1, 1, 1};
    readLengthsFile(ss, parsed);
    EXPECT_EQ(parsed.lengths, original.lengths);
}

TEST(SimPointIo, LengthsCountMismatchFatal)
{
    FrequencyVectorSet fvs = sampleFvs();
    std::stringstream ss("5 6"); // two lengths, three intervals
    EXPECT_EXIT(readLengthsFile(ss, fvs),
                ::testing::ExitedWithCode(1), "entries");
}

TEST(SimPointIo, BadBbvLinesFatal)
{
    std::stringstream noPrefix("X:1:2\n");
    EXPECT_EXIT((void)readBbvFile(noPrefix),
                ::testing::ExitedWithCode(1), "expected 'T'");
    std::stringstream zeroIdx("T:0:2\n");
    EXPECT_EXIT((void)readBbvFile(zeroIdx),
                ::testing::ExitedWithCode(1), "dimension index");
}

TEST(SimPointIo, SimpointFilesRoundTrip)
{
    // Cluster on synthetic data, write all three files, read back.
    FrequencyVectorSet fvs;
    fvs.dimension = 16;
    Rng rng(4);
    for (int i = 0; i < 40; ++i) {
        const u32 behaviour = i % 3;
        SparseVec vec{{behaviour * 5,
                       50.0 + rng.nextDouble(-1.0, 1.0)},
                      {behaviour * 5 + 1, 25.0}};
        fvs.addInterval(std::move(vec), 1000);
    }
    SimPointOptions options;
    options.maxK = 6;
    const SimPointResult original = pickSimulationPoints(fvs, options);

    std::stringstream sims, weights, labels;
    writeSimpointsFile(sims, original);
    writeWeightsFile(weights, original);
    writeLabelsFile(labels, original);

    const SimPointResult parsed =
        readSimPointFiles(sims, weights, labels);
    EXPECT_EQ(parsed.labels, original.labels);
    ASSERT_EQ(parsed.phases.size(), original.phases.size());
    for (std::size_t p = 0; p < parsed.phases.size(); ++p) {
        EXPECT_EQ(parsed.phases[p].id, original.phases[p].id);
        EXPECT_EQ(parsed.phases[p].representative,
                  original.phases[p].representative);
        EXPECT_NEAR(parsed.phases[p].weight,
                    original.phases[p].weight, 1e-6);
        EXPECT_EQ(parsed.phases[p].members,
                  original.phases[p].members);
    }
}

TEST(SimPointIo, InconsistentFilesFatal)
{
    std::stringstream sims("0 0\n"), weights("0.5 0\n1.0 1\n"),
        labels("0\n0\n");
    EXPECT_EXIT((void)readSimPointFiles(sims, weights, labels),
                ::testing::ExitedWithCode(1), "phases");

    std::stringstream sims2("3 0\n"), weights2("1.0 0\n"),
        labels2("0\n0\n");
    EXPECT_EXIT((void)readSimPointFiles(sims2, weights2, labels2),
                ::testing::ExitedWithCode(1), "representative");
}

TEST(SimPointIo, EmptyLabelsFatal)
{
    std::stringstream sims("0 0\n"), weights("1.0 0\n"), labels("");
    EXPECT_EXIT((void)readSimPointFiles(sims, weights, labels),
                ::testing::ExitedWithCode(1), "labels file");
}
