/**
 * @file
 * Provenance-manifest tests: every TaskGraph run appends one
 * ManifestRun with entries in node-id order, probe outcomes agree
 * with the scheduler's cache counters, the JSON file round-trips,
 * unwritable output paths warn instead of throwing, and the progress
 * meter's ETA ignores zero-cost (cache-resolved) steps.
 */

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include <gtest/gtest.h>
#include <unistd.h>

#include "obs/manifest/manifest.hh"
#include "obs/progress.hh"
#include "obs/setup.hh"
#include "obs/stats.hh"
#include "pipeline/taskgraph.hh"
#include "sim/stages.hh"
#include "sim/study.hh"
#include "store/store.hh"
#include "test_support.hh"
#include "util/json.hh"
#include "util/threadpool.hh"

using namespace xbsp;
namespace fs = std::filesystem;

namespace
{

sim::StudyConfig
tinyStudyConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.simpoint.maxK = 5;
    return config;
}

/** Clears the process-global manifest around each test. */
class ManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::RunManifest::global().clear();
        store::ArtifactStore::configureGlobal({});
        dir = fs::temp_directory_path() /
              ("xbsp_manifest_test_" + std::to_string(::getpid()) +
               "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void
    TearDown() override
    {
        store::ArtifactStore::configureGlobal({});
        obs::RunManifest::global().clear();
        fs::remove_all(dir);
    }

    fs::path dir;
};

bool
isHex(const std::string& s)
{
    for (char c : s) {
        const bool hex = (c >= '0' && c <= '9') ||
                         (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    return !s.empty();
}

} // namespace

TEST_F(ManifestTest, StudyEntriesFollowNodeIdOrder)
{
    const sim::StudyConfig config = tinyStudyConfig();
    (void)sim::CrossBinaryStudy::run(test::tinyProgram(), config);

    ASSERT_EQ(obs::RunManifest::global().runCount(), 1u);
    const obs::ManifestRun run =
        obs::RunManifest::global().runs().front();
    EXPECT_EQ(run.label, "study.tiny");
    EXPECT_EQ(run.configDigest,
              sim::studyConfigDigest("tiny", config));
    EXPECT_EQ(run.configDigest.size(), 32u);
    EXPECT_TRUE(isHex(run.configDigest));
    EXPECT_GT(run.startWallMillis, 0u);
    EXPECT_GT(run.wallNanos, 0u);

    // One study graph: compile, 4 profiles, match, cluster,
    // 4 binaries, finish — entries exactly in node-id order.
    ASSERT_EQ(run.entries.size(), 12u);
    const char* stages[12] = {"compile", "profile", "profile",
                              "profile", "profile", "match",
                              "vli",     "binary",  "binary",
                              "binary",  "binary",  "finish"};
    for (std::size_t i = 0; i < run.entries.size(); ++i) {
        const obs::ManifestEntry& entry = run.entries[i];
        EXPECT_EQ(entry.node, i);
        EXPECT_EQ(entry.stage, stages[i]) << "node " << i;
        EXPECT_EQ(entry.status, "done") << "node " << i;
        EXPECT_FALSE(entry.label.empty());
    }

    // Keyed stages report their store key; match/finish have none.
    for (std::size_t i : {0u, 1u, 2u, 3u, 4u, 6u, 7u, 8u, 9u, 10u}) {
        EXPECT_EQ(run.entries[i].storeKey.size(), 32u) << "node " << i;
        EXPECT_TRUE(isHex(run.entries[i].storeKey)) << "node " << i;
    }
    EXPECT_TRUE(run.entries[5].storeKey.empty());
    EXPECT_TRUE(run.entries[11].storeKey.empty());
}

TEST_F(ManifestTest, WarmRunProbeHitsMatchSchedulerCounters)
{
    store::ArtifactStore::configureGlobal({dir.string(), true});
    const sim::StudyConfig config = tinyStudyConfig();

    (void)sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    const u64 cacheBefore = obs::StatRegistry::global().counterValue(
        "scheduler.nodes.cacheResolved");
    (void)sim::CrossBinaryStudy::run(test::tinyProgram(), config);

    ASSERT_EQ(obs::RunManifest::global().runCount(), 2u);
    const auto runs = obs::RunManifest::global().runs();
    const obs::ManifestRun& cold = runs[0];
    const obs::ManifestRun& warm = runs[1];
    EXPECT_EQ(cold.configDigest, warm.configDigest);

    // Cold: every probed node missed; nothing was cache-resolved.
    for (const auto& entry : cold.entries) {
        EXPECT_NE(entry.probe, "hit") << entry.label;
        EXPECT_EQ(entry.status, "done") << entry.label;
    }

    // Warm: the probed stages (compile, profiles, binaries) hit and
    // resolved inline off-pool; the probe tally agrees with the
    // scheduler's own counter for the run.
    u64 hits = 0;
    for (const auto& entry : warm.entries) {
        if (entry.probe == "hit") {
            ++hits;
            EXPECT_EQ(entry.status, "cache") << entry.label;
            EXPECT_EQ(entry.worker, 0u) << entry.label;  // scheduler
            EXPECT_FALSE(entry.storeKey.empty()) << entry.label;
        } else {
            EXPECT_NE(entry.status, "cache") << entry.label;
        }
    }
    EXPECT_EQ(hits, 9u);  // 1 compile + 4 profile + 4 binary
    EXPECT_EQ(hits, obs::StatRegistry::global().counterValue(
                        "scheduler.nodes.cacheResolved") -
                        cacheBefore);
}

TEST_F(ManifestTest, FailedRunsAreRecordedWithStatusAndSkips)
{
    ThreadPool pool(0);
    pipeline::TaskGraph graph;
    const auto ok = graph.add("ok", "stage", {}, [] {});
    const auto bad = graph.add("bad", "stage", {ok}, [] {
        throw std::runtime_error("boom");
    });
    graph.add("downstream", "stage", {bad}, [] {});
    graph.setManifestInfo("unit", "feedface");
    EXPECT_THROW(graph.run(pool), std::runtime_error);

    ASSERT_EQ(obs::RunManifest::global().runCount(), 1u);
    const obs::ManifestRun run =
        obs::RunManifest::global().runs().front();
    EXPECT_EQ(run.label, "unit");
    EXPECT_EQ(run.configDigest, "feedface");
    ASSERT_EQ(run.entries.size(), 3u);
    EXPECT_EQ(run.entries[0].status, "done");
    EXPECT_EQ(run.entries[1].status, "failed");
    EXPECT_EQ(run.entries[2].status, "skipped");
    for (const auto& entry : run.entries) {
        EXPECT_EQ(entry.probe, "none");
        EXPECT_TRUE(entry.storeKey.empty());
    }
}

TEST_F(ManifestTest, JsonFileRoundTrips)
{
    (void)sim::CrossBinaryStudy::run(test::tinyProgram(),
                                     tinyStudyConfig());
    const std::string path = (dir / "manifest.json").string();
    ASSERT_TRUE(obs::RunManifest::global().writeJsonFile(path));

    const JsonValue doc = parseJsonFile(path);
    const JsonValue& runs = doc.at("runs");
    ASSERT_EQ(runs.size(), 1u);
    const JsonValue& run = runs.at(std::size_t{0});
    EXPECT_EQ(run.at("label").asString(), "study.tiny");
    EXPECT_EQ(run.at("configDigest").asString().size(), 32u);
    const JsonValue& nodes = run.at("nodes");
    ASSERT_EQ(nodes.size(), 12u);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const JsonValue& node = nodes.at(i);
        EXPECT_EQ(node.at("node").asU64(), i);
        EXPECT_FALSE(node.at("stage").asString().empty());
        EXPECT_EQ(node.at("status").asString(), "done");
    }
    EXPECT_EQ(nodes.at(std::size_t{0}).at("stage").asString(),
              "compile");
}

TEST_F(ManifestTest, UnwritablePathWarnsAndReturnsFalse)
{
    (void)sim::CrossBinaryStudy::run(test::tinyProgram(),
                                     tinyStudyConfig());
    EXPECT_NO_THROW({
        EXPECT_FALSE(obs::RunManifest::global().writeJsonFile(
            "/nonexistent-xbsp-dir/sub/manifest.json"));
    });
}

TEST_F(ManifestTest, ObsSessionFlushSurvivesUnwritablePaths)
{
    // A finished run's results must never be lost to a bad output
    // flag: flush() warns per file and keeps going.
    (void)sim::CrossBinaryStudy::run(test::tinyProgram(),
                                     tinyStudyConfig());
    ::setenv("XBSP_STATS", "/nonexistent-xbsp-dir/stats.json", 1);
    ::setenv("XBSP_TRACE", "/nonexistent-xbsp-dir/trace.json", 1);
    ::setenv("XBSP_MANIFEST", "/nonexistent-xbsp-dir/manifest.json",
             1);
    {
        obs::ObsSession session;
        EXPECT_NO_THROW(session.flush());
        EXPECT_NO_THROW(session.flush());  // idempotent
    }
    ::unsetenv("XBSP_STATS");
    ::unsetenv("XBSP_TRACE");
    ::unsetenv("XBSP_MANIFEST");
}

TEST(ProgressEta, ZeroCostStepsDoNotFeedTheEstimate)
{
    obs::Progress progress;
    EXPECT_LT(progress.etaSeconds(), 0.0);  // nothing announced

    progress.addSteps(4);
    EXPECT_LT(progress.etaSeconds(), 0.0);  // nothing done yet

    {
        obs::Progress::ZeroCostScope zeroCost;
        progress.completeStep("cached-a");
        progress.completeStep("cached-b");
    }
    EXPECT_EQ(progress.completed(), 2u);
    EXPECT_EQ(progress.zeroCostCompleted(), 2u);
    // Only cache hits so far: no costly sample, no estimate.
    EXPECT_LT(progress.etaSeconds(), 0.0);

    progress.completeStep("real-work");
    EXPECT_GE(progress.etaSeconds(), 0.0);

    progress.completeStep("last");
    EXPECT_EQ(progress.completed(), progress.announced());
    EXPECT_LT(progress.etaSeconds(), 0.0);  // finished
}
