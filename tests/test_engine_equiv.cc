/**
 * @file
 * Engine fast-path equivalence: the compiled engine is a pure speed
 * knob, so it must be *observationally identical* to the structural
 * interpreter — the serialized event stream (blocks, markers, memory
 * references, in order) is byte-identical, and every study-level
 * report field matches exactly at any worker count.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exec/compiled.hh"
#include "exec/trace.hh"
#include "sim/study.hh"
#include "store/store.hh"
#include "test_support.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

/** Serialize one full run under a pinned engine mode. */
std::string
captureWith(const bin::Binary& binary, exec::EngineMode mode)
{
    std::stringstream out;
    exec::TraceOptions options;
    options.memRefs = true;
    exec::TraceWriter writer(out, options);
    exec::Engine engine(binary, 0x5EEDull, mode);
    engine.addObserver(&writer, writer.hooks());
    engine.run();
    return out.str();
}

/** Restore the globally selected engine mode on scope exit. */
struct ScopedEngineMode
{
    exec::EngineMode saved = exec::activeEngineMode();
    ~ScopedEngineMode()
    {
        exec::selectEngineMode(exec::engineModeName(saved));
    }
};

struct Totals : exec::Observer
{
    u64 blocks = 0;
    InstrCount instrs = 0;
    u64 markers = 0;
    u64 refs = 0;
    u64 writes = 0;

    void
    onBlock(u32, u32 n) override
    {
        ++blocks;
        instrs += n;
    }

    void onMarker(u32) override { ++markers; }

    void
    onMemRef(Addr, bool w) override
    {
        ++refs;
        writes += w ? 1 : 0;
    }
};

} // namespace

TEST(EngineEquiv, TraceByteIdenticalAcrossModesAndReplay)
{
    // Three real workloads, two targets each: the interpreter, the
    // compiled engine, and a replay of the captured stream must all
    // serialize to the same bytes.
    for (const char* name : {"gzip", "mcf", "equake"}) {
        const ir::Program program =
            workloads::makeWorkload(name, 0.05);
        for (const bin::Target target :
             {bin::target32u, bin::target64o}) {
            const bin::Binary binary =
                compile::compileProgram(program, target);

            const std::string interp =
                captureWith(binary, exec::EngineMode::Interp);
            const std::string compiled =
                captureWith(binary, exec::EngineMode::Compiled);
            ASSERT_EQ(interp, compiled)
                << name << "/" << bin::targetName(target);

            // Round-trip: replaying the stream through a fresh
            // writer reproduces it byte for byte.
            std::stringstream in(interp), out;
            exec::TraceOptions options;
            options.memRefs = true;
            exec::TraceWriter writer(out, options);
            exec::replayTrace(in, {&writer});
            ASSERT_EQ(out.str(), interp)
                << name << "/" << bin::targetName(target);
        }
    }
}

TEST(EngineEquiv, ObserverTotalsIdenticalAcrossModes)
{
    const bin::Binary binary =
        compile::compileProgram(test::trickyProgram(), bin::target32o);

    Totals ti, tc;
    exec::Engine interp(binary, 0x5EEDull, exec::EngineMode::Interp);
    interp.addObserver(&ti, {true, true, true});
    interp.run();
    exec::Engine compiled(binary, 0x5EEDull,
                          exec::EngineMode::Compiled);
    compiled.addObserver(&tc, {true, true, true});
    compiled.run();

    EXPECT_EQ(tc.blocks, ti.blocks);
    EXPECT_EQ(tc.instrs, ti.instrs);
    EXPECT_EQ(tc.markers, ti.markers);
    EXPECT_EQ(tc.refs, ti.refs);
    EXPECT_EQ(tc.writes, ti.writes);
    EXPECT_EQ(compiled.instructionsExecuted(),
              interp.instructionsExecuted());
    EXPECT_EQ(interp.instructionsExecuted(),
              bin::staticDynamicInstrCount(binary));
}

TEST(EngineEquiv, CompiledTraceStructure)
{
    const bin::Binary binary =
        compile::compileProgram(test::trickyProgram(), bin::target32u);
    const exec::CompiledTrace trace = exec::compileTrace(binary);

    // One start per procedure, opening with its entry marker.
    ASSERT_EQ(trace.procStart.size(), binary.procs.size());
    u64 rets = 0;
    for (u32 p = 0; p < binary.procs.size(); ++p) {
        const exec::CompiledOp& first = trace.ops[trace.procStart[p]];
        EXPECT_EQ(first.kind, exec::CompiledOp::Kind::Marker);
        EXPECT_EQ(first.a, binary.procs[p].entryMarkerId);
    }
    for (const exec::CompiledOp& op : trace.ops) {
        switch (op.kind) {
          case exec::CompiledOp::Kind::BlockRun:
            ASSERT_LE(static_cast<u64>(op.a) + op.b,
                      trace.blockIds.size());
            EXPECT_GT(op.b, 0u);
            break;
          case exec::CompiledOp::Kind::Ret:
            ++rets;
            break;
          case exec::CompiledOp::Kind::Backedge:
            // The backedge target is the first op of the loop body;
            // its predecessor is always the loop-entry marker, which
            // is what fences the block-run merge at the loop top.
            ASSERT_GT(op.a, 0u);
            EXPECT_EQ(trace.ops[op.a - 1].kind,
                      exec::CompiledOp::Kind::Marker);
            ASSERT_LT(op.b, trace.loopTrips.size());
            EXPECT_GT(trace.loopTrips[op.b], 1u);
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(rets, binary.procs.size());
}

TEST(EngineEquiv, CompiledTraceCacheSharedByContent)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const bin::Binary copy = binary;  // same content, new object
    const auto a = exec::compiledTraceFor(binary);
    const auto b = exec::compiledTraceFor(copy);
    EXPECT_EQ(a.get(), b.get());

    const bin::Binary other =
        compile::compileProgram(test::tinyProgram(), bin::target64o);
    EXPECT_NE(exec::compiledTraceFor(other).get(), a.get());
}

TEST(EngineEquiv, StudyFieldsIdenticalAcrossModesAndJobs)
{
    // The full pipeline (the fig-3 report inputs) must produce
    // exactly the same numbers under either engine at 1 and 4
    // workers.  The artifact store is disabled so every run really
    // recomputes.
    store::ArtifactStore::configureGlobal({});
    ScopedEngineMode restore;

    const ir::Program program = workloads::makeWorkload("gzip", 0.1);
    sim::StudyConfig config;
    config.intervalTarget = 100000;

    struct Case
    {
        const char* mode;
        u64 jobs;
    };
    std::vector<sim::CrossBinaryStudy> studies;
    for (const Case c : {Case{"interp", 1}, Case{"interp", 4},
                         Case{"compiled", 1}, Case{"compiled", 4}}) {
        ASSERT_TRUE(exec::selectEngineMode(c.mode));
        setGlobalJobs(c.jobs);
        studies.push_back(sim::CrossBinaryStudy::run(program, config));
    }
    setGlobalJobs(0);

    const sim::CrossBinaryStudy& ref = studies.front();
    for (std::size_t s = 1; s < studies.size(); ++s) {
        const sim::CrossBinaryStudy& got = studies[s];
        // Exact equality throughout: the engine mode and the worker
        // count are both pure speed knobs.
        EXPECT_EQ(got.avgCpiError(sim::Method::PerBinaryFli),
                  ref.avgCpiError(sim::Method::PerBinaryFli));
        EXPECT_EQ(got.avgCpiError(sim::Method::MappableVli),
                  ref.avgCpiError(sim::Method::MappableVli));
        EXPECT_EQ(got.avgSimPointCount(sim::Method::MappableVli),
                  ref.avgSimPointCount(sim::Method::MappableVli));
        EXPECT_EQ(got.avgIntervalSize(sim::Method::MappableVli),
                  ref.avgIntervalSize(sim::Method::MappableVli));
        EXPECT_EQ(got.trueSpeedup(0, 1), ref.trueSpeedup(0, 1));
        EXPECT_EQ(got.speedupError(sim::Method::MappableVli, 2, 3),
                  ref.speedupError(sim::Method::MappableVli, 2, 3));
        ASSERT_EQ(got.perBinary().size(), ref.perBinary().size());
        for (std::size_t b = 0; b < ref.perBinary().size(); ++b) {
            const sim::BinaryStudy& rb = ref.perBinary()[b];
            const sim::BinaryStudy& gb = got.perBinary()[b];
            EXPECT_EQ(gb.totalInstrs, rb.totalInstrs);
            EXPECT_EQ(gb.detailedRun.totals.cycles,
                      rb.detailedRun.totals.cycles);
            EXPECT_EQ(gb.detailedRun.memory.l1Hits,
                      rb.detailedRun.memory.l1Hits);
            EXPECT_EQ(gb.detailedRun.memory.dramAccesses,
                      rb.detailedRun.memory.dramAccesses);
            EXPECT_EQ(gb.detailedRun.memory.dramWritebacks,
                      rb.detailedRun.memory.dramWritebacks);
            EXPECT_EQ(gb.fliEstimate.estCpi, rb.fliEstimate.estCpi);
            EXPECT_EQ(gb.vliEstimate.estCpi, rb.vliEstimate.estCpi);
            EXPECT_EQ(gb.markers.counts, rb.markers.counts);
        }
    }
}

TEST(EngineEquiv, SelectEngineModeValidation)
{
    ScopedEngineMode restore;
    EXPECT_TRUE(exec::selectEngineMode("interp"));
    EXPECT_EQ(exec::activeEngineMode(), exec::EngineMode::Interp);
    EXPECT_TRUE(exec::selectEngineMode("compiled"));
    EXPECT_EQ(exec::activeEngineMode(), exec::EngineMode::Compiled);
    EXPECT_FALSE(exec::selectEngineMode("jit"));
    EXPECT_EQ(exec::activeEngineMode(), exec::EngineMode::Compiled);
    EXPECT_EQ(exec::engineModeName(exec::EngineMode::Interp),
              "interp");
    EXPECT_EQ(exec::engineModeName(exec::EngineMode::Compiled),
              "compiled");
}
