/**
 * @file
 * Shared fixtures/helpers for the test suite: small deterministic
 * programs with known counts, and shortcuts for compiling/profiling
 * them.
 */

#ifndef XBSP_TESTS_TEST_SUPPORT_HH
#define XBSP_TESTS_TEST_SUPPORT_HH

#include "compile/compiler.hh"
#include "ir/builder.hh"
#include "profile/profile.hh"

namespace xbsp::test
{

/**
 * A minimal two-phase program with completely known structure:
 *
 *   main:
 *     call setup                  (1x; loop 50x block)
 *     loop 10x:                   ("outer")
 *       call work                 (10x; loop 100x block)
 *       call tail                 (10x; single block)
 *
 * Source instruction count: 50*20 + 10*(100*30 + 8) = 1000 + 30080.
 */
inline ir::Program
tinyProgram()
{
    using namespace ir;
    ProgramBuilder b("tiny");
    b.procedure("setup").loop(50, [&](StmtSeq& s) {
        s.block(20, 5, stridePattern(1, 16_KiB, 8, 0.2, 0.0));
    });
    b.procedure("work").loop(100, [&](StmtSeq& s) {
        s.block(30, 10, stridePattern(2, 64_KiB, 8, 0.3, 0.0));
    });
    b.procedure("tail").block(8, 2,
                              randomPattern(3, 8_KiB, 0.5, 0.0));
    StmtSeq main = b.procedure("main");
    main.call("setup");
    main.loop(10, [&](StmtSeq& outer) {
        outer.call("work");
        outer.call("tail");
    });
    return b.build();
}

/**
 * A program exercising every optimizer transform: an Always-inline
 * helper (called from two sites), a Partial-inline helper, an
 * unrollable loop (trips 16) and a splittable loop.
 */
inline ir::Program
trickyProgram()
{
    using namespace ir;
    ProgramBuilder b("tricky");
    b.procedure("helper", InlineHint::Always).loop(8, [&](StmtSeq& s) {
        s.compute(5);
    });
    b.procedure("sometimes", InlineHint::Partial).block(10, 0);
    b.procedure("unrolled").loop(
        40,
        [&](StmtSeq& outer) {
            outer.loop(16, [&](StmtSeq& s) { s.compute(4); },
                       LoopOpts{.unrollable = true});
        });
    b.procedure("split").loop(
        60,
        [&](StmtSeq& s) {
            s.compute(6);
            s.compute(7);
        },
        LoopOpts{.splittable = true});
    StmtSeq main = b.procedure("main");
    main.loop(5, [&](StmtSeq& outer) {
        outer.call("helper");
        outer.call("sometimes");
        outer.call("unrolled");
        outer.call("split");
        outer.call("helper");
        outer.call("sometimes");
    });
    return b.build();
}

/** Compile the standard four binaries of a program. */
inline std::vector<bin::Binary>
compileFour(const ir::Program& program)
{
    return compile::compileAllTargets(program);
}

/** Marker profile of one binary (cheap, no timing). */
inline prof::MarkerProfile
profileMarkers(const bin::Binary& binary)
{
    return prof::runProfilePass(binary, 1u << 20).markers;
}

/** Dynamic count of a (kind, symbol-or-line) marker group. */
inline u64
markerGroupCount(const bin::Binary& binary,
                 const prof::MarkerProfile& profile,
                 bin::MarkerKind kind, const std::string& symbol,
                 u32 line)
{
    u64 total = 0;
    for (u32 m = 0; m < binary.markerCount(); ++m) {
        const bin::Marker& marker = binary.markers[m];
        if (marker.kind != kind)
            continue;
        if (kind == bin::MarkerKind::ProcEntry) {
            if (marker.symbol == symbol)
                total += profile.counts[m];
        } else if (marker.line == line) {
            total += profile.counts[m];
        }
    }
    return total;
}

} // namespace xbsp::test

#endif // XBSP_TESTS_TEST_SUPPORT_HH
