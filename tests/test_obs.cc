/**
 * @file
 * Tests for the observability subsystem: registry determinism across
 * worker counts (the bit-identity contract --stats-out relies on),
 * histogram bucket math, timer accumulation/nesting, JSON shape and
 * escaping, and the trace writer (valid JSON, correctly nested spans,
 * worker-id tids).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <sstream>

#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "simpoint/projection.hh"
#include "util/json.hh"
#include "util/threadpool.hh"

using namespace xbsp;
using namespace xbsp::obs;

namespace
{

/**
 * Minimal JSON syntax checker for the subset the writers emit
 * (objects, arrays, strings with escapes, numbers, true/false/null).
 * Returns true when `text` is exactly one well-formed value.
 */
bool
validJson(const std::string& text)
{
    std::size_t pos = 0;
    auto skipWs = [&]() {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };
    std::function<bool()> value = [&]() -> bool {
        skipWs();
        if (pos >= text.size())
            return false;
        const char c = text[pos];
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++pos;
            skipWs();
            if (pos < text.size() && text[pos] == close) {
                ++pos;
                return true;
            }
            for (;;) {
                if (c == '{') {
                    skipWs();
                    if (pos >= text.size() || text[pos] != '"' ||
                        !value())
                        return false;
                    skipWs();
                    if (pos >= text.size() || text[pos] != ':')
                        return false;
                    ++pos;
                }
                if (!value())
                    return false;
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == close) {
                    ++pos;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            ++pos;
            while (pos < text.size() && text[pos] != '"') {
                if (text[pos] == '\\')
                    ++pos;
                ++pos;
            }
            if (pos >= text.size())
                return false;
            ++pos;
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return true;
        }
        // Number: accept the usual characters and let strtod-ish
        // shape rules slide; the writers only emit printf output.
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        return pos > start;
    };
    if (!value())
        return false;
    skipWs();
    return pos == text.size();
}

/** Deterministic instrumented workload driven over the global pool. */
void
runInstrumentedWork(std::size_t n)
{
    StatRegistry& reg = StatRegistry::global();
    Counter events = reg.counter("test.work.events");
    Distribution sizes = reg.distribution("test.work.sizes");
    Timer timer = reg.timer("test.work.time");
    parallelChunks(globalPool(), n,
                   [&](std::size_t begin, std::size_t end,
                       std::size_t) {
                       ScopedTimer scope(timer);
                       ShardCounter shard(events);
                       for (std::size_t i = begin; i < end; ++i) {
                           shard.add(i + 1);
                           sizes.sample(i);
                       }
                   });
}

} // namespace

TEST(StatRegistry, CountersMergeExactlyAtAnyWorkerCount)
{
    StatRegistry& reg = StatRegistry::global();

    setGlobalJobs(1);
    reg.reset();
    runInstrumentedWork(1000);
    const std::string serial = reg.jsonString(false);
    const u64 serialEvents = reg.counterValue("test.work.events");

    setGlobalJobs(4);
    reg.reset();
    runInstrumentedWork(1000);
    const std::string parallel = reg.jsonString(false);
    setGlobalJobs(0);

    // 1 + 2 + ... + 1000
    EXPECT_EQ(serialEvents, 1000u * 1001u / 2u);
    // The whole dump — counters and distributions, key order
    // included — must be byte-identical across worker counts.
    EXPECT_EQ(serial, parallel);
    EXPECT_TRUE(validJson(serial));
}

TEST(StatRegistry, ProjectionDotOpsEqualAcrossWorkerCounts)
{
    // The projection counter symmetric to kmeans.estep.distances:
    // one count per (sparse entry x output dim) multiply-add, which
    // is a function of the input only — never of layout, padding,
    // kernel arch or worker count.
    sp::FrequencyVectorSet fvs;
    fvs.dimension = 64;
    const std::size_t intervals = 200;
    const std::size_t nnz = 3;
    for (std::size_t i = 0; i < intervals; ++i) {
        sp::SparseVec vec;
        const u32 base = static_cast<u32>(i % 40);
        vec.emplace_back(base, 1.0);
        vec.emplace_back(base + 5, 2.0);
        vec.emplace_back(base + 9, 0.5);
        fvs.addInterval(std::move(vec), 1000);
    }
    const u32 dims = 15;

    StatRegistry& reg = StatRegistry::global();
    setGlobalJobs(1);
    reg.reset();
    sp::project(fvs, dims, 99);
    const u64 serialOps = reg.counterValue("projection.dotOps");

    setGlobalJobs(4);
    reg.reset();
    sp::project(fvs, dims, 99);
    const u64 parallelOps = reg.counterValue("projection.dotOps");
    setGlobalJobs(0);

    EXPECT_EQ(serialOps, intervals * nnz * dims);
    EXPECT_EQ(serialOps, parallelOps);
}

TEST(StatRegistry, DistributionBucketMath)
{
    // Bucket 0 holds {0}; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(distBucketOf(0), 0u);
    EXPECT_EQ(distBucketOf(1), 1u);
    EXPECT_EQ(distBucketOf(2), 2u);
    EXPECT_EQ(distBucketOf(3), 2u);
    EXPECT_EQ(distBucketOf(4), 3u);
    EXPECT_EQ(distBucketOf(7), 3u);
    EXPECT_EQ(distBucketOf(8), 4u);
    EXPECT_EQ(distBucketOf(1023), 10u);
    EXPECT_EQ(distBucketOf(1024), 11u);
    EXPECT_EQ(distBucketOf(~0ull), 64u);

    StatRegistry& reg = StatRegistry::global();
    reg.reset();
    Distribution dist = reg.distribution("test.bucket.dist");
    for (const u64 v : {0ull, 1ull, 3ull, 3ull, 8ull, 1024ull})
        dist.sample(v);

    const DistributionSnapshot snap =
        reg.distributionSnapshot("test.bucket.dist");
    EXPECT_EQ(snap.count, 6u);
    EXPECT_EQ(snap.sum, 0u + 1u + 3u + 3u + 8u + 1024u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 1024u);
    EXPECT_EQ(snap.buckets[0], 1u);  // 0
    EXPECT_EQ(snap.buckets[1], 1u);  // 1
    EXPECT_EQ(snap.buckets[2], 2u);  // 3, 3
    EXPECT_EQ(snap.buckets[4], 1u);  // 8
    EXPECT_EQ(snap.buckets[11], 1u); // 1024
    EXPECT_EQ(snap.buckets[3], 0u);
}

TEST(StatRegistry, UnregisteredLookupsReturnZeros)
{
    StatRegistry& reg = StatRegistry::global();
    EXPECT_EQ(reg.counterValue("test.never.registered"), 0u);
    EXPECT_EQ(reg.timerNanos("test.never.registered"), 0u);
    EXPECT_EQ(reg.distributionSnapshot("test.never.registered"),
              DistributionSnapshot{});
}

TEST(StatRegistry, HandlesStaySameAcrossRepeatLookup)
{
    StatRegistry& reg = StatRegistry::global();
    reg.reset();
    Counter first = reg.counter("test.same.counter");
    first.add(3);
    // The second lookup must land on the same cell, not a fresh one.
    Counter second = reg.counter("test.same.counter");
    second.add(4);
    EXPECT_EQ(reg.counterValue("test.same.counter"), 7u);
    EXPECT_EQ(first.value(), 7u);
}

TEST(StatRegistry, TimersAccumulateAndNest)
{
    StatRegistry& reg = StatRegistry::global();
    reg.reset();
    Timer outer = reg.timer("test.timer.outer");
    Timer inner = reg.timer("test.timer.inner");
    {
        ScopedTimer outerScope(outer);
        for (int i = 0; i < 3; ++i)
            ScopedTimer innerScope(inner);
    }
    EXPECT_EQ(outer.count(), 1u);
    EXPECT_EQ(inner.count(), 3u);
    // The outer scope strictly contains the inner activations.
    EXPECT_GE(outer.totalNanos(), inner.totalNanos());
    EXPECT_EQ(reg.timerNanos("test.timer.outer"), outer.totalNanos());

    // Timers appear in the dump only when asked for: the default
    // (deterministic) dump must not contain wall-clock values.
    const std::string bare = reg.jsonString(false);
    const std::string timed = reg.jsonString(true);
    EXPECT_EQ(bare.find("timers"), std::string::npos);
    EXPECT_NE(timed.find("timers"), std::string::npos);
    EXPECT_NE(timed.find("test.timer.outer"), std::string::npos);
    EXPECT_TRUE(validJson(timed));
}

TEST(JsonWriter, EscapesAndStableShape)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("plain", "text");
        w.member("quote\"back\\slash", "tab\there\nline");
        w.member("int", -42);
        w.member("uint", ~0ull);
        w.member("float", 1.5, 2);
        w.member("flag", true);
        w.key("nested").beginArray();
        w.value(1).value("two").null();
        w.beginObject().endObject();
        w.endArray();
        w.endObject();
    }
    const std::string text = os.str();
    EXPECT_TRUE(validJson(text)) << text;
    EXPECT_NE(text.find("\"quote\\\"back\\\\slash\""),
              std::string::npos);
    EXPECT_NE(text.find("\"tab\\there\\nline\""), std::string::npos);
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
}

TEST(Trace, SpansAreValidJsonAndNestCorrectly)
{
    TraceSession session;
    session.enable();
    {
        TraceSpan outer(session, "outer", "test");
        {
            TraceSpan inner(session, "inner", "test");
        }
        TraceSpan sibling(session, "sibling", "test");
    }
    session.disable();

    const std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 3u);
    // Spans close in LIFO order: inner, sibling, outer.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[1].name, "sibling");
    EXPECT_EQ(events[2].name, "outer");

    // Same-thread spans must be properly nested: each pair is either
    // disjoint or one contains the other.
    for (std::size_t a = 0; a < events.size(); ++a) {
        for (std::size_t b = a + 1; b < events.size(); ++b) {
            if (events[a].tid != events[b].tid)
                continue;
            const u64 aStart = events[a].startMicros;
            const u64 aEnd = aStart + events[a].durMicros;
            const u64 bStart = events[b].startMicros;
            const u64 bEnd = bStart + events[b].durMicros;
            const bool disjoint = aEnd <= bStart || bEnd <= aStart;
            const bool aInB = bStart <= aStart && aEnd <= bEnd;
            const bool bInA = aStart <= bStart && bEnd <= aEnd;
            EXPECT_TRUE(disjoint || aInB || bInA)
                << events[a].name << " vs " << events[b].name;
        }
    }
    // "outer" contains "inner".
    EXPECT_LE(events[2].startMicros, events[0].startMicros);
    EXPECT_GE(events[2].startMicros + events[2].durMicros,
              events[0].startMicros + events[0].durMicros);

    std::ostringstream os;
    session.writeJson(os);
    const std::string text = os.str();
    EXPECT_TRUE(validJson(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Trace, SpansRecordPoolWorkerIds)
{
    TraceSession session;
    session.enable();
    setGlobalJobs(4);
    parallelChunks(globalPool(), 8,
                   [&](std::size_t, std::size_t, std::size_t chunk) {
                       TraceSpan span(session,
                                      "chunk" + std::to_string(chunk),
                                      "test");
                   });
    setGlobalJobs(0);
    session.disable();

    const std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 8u);
    for (const TraceEvent& ev : events) {
        // Chunks run on pool workers (the main thread is not one),
        // so every span carries a 1-based worker id within the pool.
        EXPECT_GE(ev.tid, 1u);
        EXPECT_LE(ev.tid, 4u);
    }
}

TEST(Trace, DisabledSessionRecordsNothing)
{
    TraceSession session;
    {
        TraceSpan span(session, "dropped", "test");
    }
    EXPECT_TRUE(session.events().empty());
    session.enable();
    {
        TraceSpan span(session, "kept", "test");
    }
    session.disable();
    EXPECT_EQ(session.events().size(), 1u);
}

TEST(Progress, CountsSteps)
{
    Progress& progress = Progress::global();
    progress.reset();
    progress.addSteps(3);
    EXPECT_EQ(progress.announced(), 3u);
    EXPECT_EQ(progress.completed(), 0u);
    progress.completeStep("a");
    progress.completeStep("b");
    EXPECT_EQ(progress.completed(), 2u);
}
