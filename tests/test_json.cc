/**
 * @file
 * JsonWriter string-escaping tests: every byte sequence — control
 * characters, encoded lone surrogates, overlong encodings, stray
 * continuation bytes — must come out as valid UTF-8 *and* valid JSON.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/json.hh"

using namespace xbsp;

TEST(JsonEscape, MandatoryShortEscapes)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, AllControlCharactersBecomeUnicodeEscapes)
{
    for (unsigned c = 0; c < 0x20; ++c) {
        const std::string in(1, static_cast<char>(c));
        const std::string out = JsonWriter::escape(in);
        // Never a raw control byte in the output.
        for (char b : out)
            EXPECT_GE(static_cast<unsigned char>(b), 0x20u)
                << "control 0x" << std::hex << c;
        EXPECT_EQ(out.front(), '\\');
    }
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x00')), "\\u0000");
}

TEST(JsonEscape, ValidUtf8PassesThroughUntouched)
{
    const std::string two = "caf\xc3\xa9";             // é
    const std::string three = "\xe2\x82\xac";          // €
    const std::string four = "\xf0\x9f\x98\x80";       // 😀
    EXPECT_EQ(JsonWriter::escape(two), two);
    EXPECT_EQ(JsonWriter::escape(three), three);
    EXPECT_EQ(JsonWriter::escape(four), four);
}

TEST(JsonEscape, EncodedLoneSurrogatesBecomeUnicodeEscapes)
{
    // UTF-8-encoded U+D800 (low end) and U+DFFF (high end): CESU-8
    // style bytes that strict validators reject.  They must be
    // re-emitted as \uXXXX escapes, never as raw bytes.
    EXPECT_EQ(JsonWriter::escape("\xed\xa0\x80"), "\\ud800");
    EXPECT_EQ(JsonWriter::escape("\xed\xbf\xbf"), "\\udfff");
    EXPECT_EQ(JsonWriter::escape("x\xed\xb2\xa9y"), "x\\udca9y");
}

TEST(JsonEscape, InvalidBytesBecomeReplacementCharacter)
{
    // Stray continuation byte.
    EXPECT_EQ(JsonWriter::escape("\x80"), "\\ufffd");
    // Lead byte with no continuation.
    EXPECT_EQ(JsonWriter::escape("\xc3"), "\\ufffd");
    // Truncated three-byte sequence.
    EXPECT_EQ(JsonWriter::escape("\xe2\x82"), "\\ufffd\\ufffd");
    // Bytes that can never appear in UTF-8.
    EXPECT_EQ(JsonWriter::escape("\xfe\xff"), "\\ufffd\\ufffd");
    // Overlong two-byte NUL (0xc0 0x80) is outside the 0xc2..0xdf
    // lead range, so both bytes are replaced.
    EXPECT_EQ(JsonWriter::escape("\xc0\x80"), "\\ufffd\\ufffd");
    // Overlong three-byte encoding of '/' (0xe0 0x80 0xaf).
    EXPECT_EQ(JsonWriter::escape("\xe0\x80\xaf"), "\\ufffd");
    // Four-byte sequence beyond U+10FFFF.
    EXPECT_EQ(JsonWriter::escape("\xf4\x90\x80\x80"), "\\ufffd");
}

TEST(JsonEscape, MixedGarbageStaysAlignedWithValidText)
{
    const std::string out =
        JsonWriter::escape("ok\x01\xed\xa0\xbd\xf0\x9f\x98\x80\xffz");
    EXPECT_EQ(out, "ok\\u0001\\ud83d\xf0\x9f\x98\x80\\ufffdz");
}

TEST(JsonEscape, FullDocumentWithHostileKeyStillWellFormed)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("na\nme\x02", std::string_view("\xed\xa0\x80\x80"));
        w.endObject();
    }
    EXPECT_EQ(os.str(),
              "{\n  \"na\\nme\\u0002\": \"\\ud800\\ufffd\"\n}");
}
