/**
 * @file
 * JsonWriter string-escaping tests — every byte sequence (control
 * characters, encoded lone surrogates, overlong encodings, stray
 * continuation bytes) must come out as valid UTF-8 *and* valid JSON —
 * plus parseJson() reader tests: documents round-trip through the
 * writer, malformed input fails with an offset-bearing error.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/json.hh"

using namespace xbsp;

TEST(JsonEscape, MandatoryShortEscapes)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscape, AllControlCharactersBecomeUnicodeEscapes)
{
    for (unsigned c = 0; c < 0x20; ++c) {
        const std::string in(1, static_cast<char>(c));
        const std::string out = JsonWriter::escape(in);
        // Never a raw control byte in the output.
        for (char b : out)
            EXPECT_GE(static_cast<unsigned char>(b), 0x20u)
                << "control 0x" << std::hex << c;
        EXPECT_EQ(out.front(), '\\');
    }
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x00')), "\\u0000");
}

TEST(JsonEscape, ValidUtf8PassesThroughUntouched)
{
    const std::string two = "caf\xc3\xa9";             // é
    const std::string three = "\xe2\x82\xac";          // €
    const std::string four = "\xf0\x9f\x98\x80";       // 😀
    EXPECT_EQ(JsonWriter::escape(two), two);
    EXPECT_EQ(JsonWriter::escape(three), three);
    EXPECT_EQ(JsonWriter::escape(four), four);
}

TEST(JsonEscape, EncodedLoneSurrogatesBecomeUnicodeEscapes)
{
    // UTF-8-encoded U+D800 (low end) and U+DFFF (high end): CESU-8
    // style bytes that strict validators reject.  They must be
    // re-emitted as \uXXXX escapes, never as raw bytes.
    EXPECT_EQ(JsonWriter::escape("\xed\xa0\x80"), "\\ud800");
    EXPECT_EQ(JsonWriter::escape("\xed\xbf\xbf"), "\\udfff");
    EXPECT_EQ(JsonWriter::escape("x\xed\xb2\xa9y"), "x\\udca9y");
}

TEST(JsonEscape, InvalidBytesBecomeReplacementCharacter)
{
    // Stray continuation byte.
    EXPECT_EQ(JsonWriter::escape("\x80"), "\\ufffd");
    // Lead byte with no continuation.
    EXPECT_EQ(JsonWriter::escape("\xc3"), "\\ufffd");
    // Truncated three-byte sequence.
    EXPECT_EQ(JsonWriter::escape("\xe2\x82"), "\\ufffd\\ufffd");
    // Bytes that can never appear in UTF-8.
    EXPECT_EQ(JsonWriter::escape("\xfe\xff"), "\\ufffd\\ufffd");
    // Overlong two-byte NUL (0xc0 0x80) is outside the 0xc2..0xdf
    // lead range, so both bytes are replaced.
    EXPECT_EQ(JsonWriter::escape("\xc0\x80"), "\\ufffd\\ufffd");
    // Overlong three-byte encoding of '/' (0xe0 0x80 0xaf).
    EXPECT_EQ(JsonWriter::escape("\xe0\x80\xaf"), "\\ufffd");
    // Four-byte sequence beyond U+10FFFF.
    EXPECT_EQ(JsonWriter::escape("\xf4\x90\x80\x80"), "\\ufffd");
}

TEST(JsonEscape, MixedGarbageStaysAlignedWithValidText)
{
    const std::string out =
        JsonWriter::escape("ok\x01\xed\xa0\xbd\xf0\x9f\x98\x80\xffz");
    EXPECT_EQ(out, "ok\\u0001\\ud83d\xf0\x9f\x98\x80\\ufffdz");
}

TEST(JsonEscape, FullDocumentWithHostileKeyStillWellFormed)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("na\nme\x02", std::string_view("\xed\xa0\x80\x80"));
        w.endObject();
    }
    EXPECT_EQ(os.str(),
              "{\n  \"na\\nme\\u0002\": \"\\ud800\\ufffd\"\n}");
}

TEST(JsonParse, ScalarsAndContainers)
{
    const JsonValue doc = parseJson(
        R"({"n": 42, "f": -2.5, "s": "hi", "t": true, "z": null,)"
        R"( "a": [1, 2, 3], "o": {"inner": "v"}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.size(), 7u);
    EXPECT_EQ(doc.at("n").asU64(), 42u);
    EXPECT_DOUBLE_EQ(doc.at("f").asNumber(), -2.5);
    EXPECT_EQ(doc.at("s").asString(), "hi");
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_TRUE(doc.at("z").isNull());
    ASSERT_TRUE(doc.at("a").isArray());
    ASSERT_EQ(doc.at("a").size(), 3u);
    EXPECT_EQ(doc.at("a").at(std::size_t{2}).asU64(), 3u);
    EXPECT_EQ(doc.at("o").at("inner").asString(), "v");
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, ObjectMembersKeepDocumentOrder)
{
    const JsonValue doc = parseJson(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[0].first, "z");
    EXPECT_EQ(doc.members()[1].first, "a");
    EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonParse, StringEscapesIncludingUnicode)
{
    const JsonValue doc = parseJson(
        R"(["a\"b\\c", "\b\f\n\r\t", "Aé", "€"])");
    EXPECT_EQ(doc.at(std::size_t{0}).asString(), "a\"b\\c");
    EXPECT_EQ(doc.at(std::size_t{1}).asString(), "\b\f\n\r\t");
    EXPECT_EQ(doc.at(std::size_t{2}).asString(), "A\xc3\xa9");
    EXPECT_EQ(doc.at(std::size_t{3}).asString(), "\xe2\x82\xac");
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8)
{
    // A, e-acute, the euro sign (BMP escapes), then U+1F600 as a
    // surrogate pair.  The escapes are assembled from a lone
    // backslash so the C++ source holds JSON escapes, not raw UTF-8.
    const std::string bs(1, '\\');
    const std::string in = "[\"A" + bs + "u00e9" + bs +
                           "u20ac\", \"" + bs + "ud83d" + bs +
                           "ude00\"]";
    const JsonValue doc = parseJson(in);
    EXPECT_EQ(doc.at(std::size_t{0}).asString(),
              "A\xc3\xa9\xe2\x82\xac");
    EXPECT_EQ(doc.at(std::size_t{1}).asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("count", u64{18446744073709551615ull >> 12});
        w.member("ratio", 0.125);
        w.member("name", std::string_view("x\ny"));
        w.key("list");
        w.beginArray();
        w.value(u64{1});
        w.value(u64{2});
        w.endArray();
        w.endObject();
    }
    const JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("count").asU64(),
              18446744073709551615ull >> 12);
    EXPECT_DOUBLE_EQ(doc.at("ratio").asNumber(), 0.125);
    EXPECT_EQ(doc.at("name").asString(), "x\ny");
    EXPECT_EQ(doc.at("list").size(), 2u);
}

TEST(JsonParse, MalformedInputThrowsWithOffset)
{
    EXPECT_THROW(parseJson(""), JsonParseError);
    EXPECT_THROW(parseJson("{"), JsonParseError);
    EXPECT_THROW(parseJson("[1, 2"), JsonParseError);
    EXPECT_THROW(parseJson(R"({"a" 1})"), JsonParseError);
    EXPECT_THROW(parseJson(R"({"a": 1,})"), JsonParseError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonParseError);
    EXPECT_THROW(parseJson("nul"), JsonParseError);
    // Trailing garbage after a complete document.
    EXPECT_THROW(parseJson("{} x"), JsonParseError);
    try {
        parseJson("[true, nope]");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError& e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

TEST(JsonParse, AccessorKindMismatchesThrow)
{
    const JsonValue doc = parseJson(R"({"s": "text", "n": 7})");
    EXPECT_THROW((void)doc.at("s").asNumber(), JsonParseError);
    EXPECT_THROW((void)doc.at("n").asString(), JsonParseError);
    EXPECT_THROW((void)doc.at("n").items(), JsonParseError);
    EXPECT_THROW((void)doc.at("absent"), JsonParseError);
    EXPECT_THROW((void)doc.at(std::size_t{0}), JsonParseError);
}
