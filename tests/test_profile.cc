/**
 * @file
 * Unit tests for the profiling layer: marker profiles, the BBV
 * accumulator and the FLI interval collector.
 */

#include <gtest/gtest.h>

#include "profile/profile.hh"
#include "test_support.hh"

using namespace xbsp;

TEST(MarkerProfiler, LoopCountsMatchSemantics)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const auto profile = test::profileMarkers(binary);

    // work's inner loop: entered 10x, iterates 100x per entry.
    u64 workLoopEntries = 0, workLoopBranches = 0;
    for (u32 m = 0; m < binary.markerCount(); ++m) {
        const bin::Marker& marker = binary.markers[m];
        if (binary.procs[marker.procId].name != "work")
            continue;
        if (marker.kind == bin::MarkerKind::LoopEntry)
            workLoopEntries += profile.counts[m];
        if (marker.kind == bin::MarkerKind::LoopBranch)
            workLoopBranches += profile.counts[m];
    }
    EXPECT_EQ(workLoopEntries, 10u);
    EXPECT_EQ(workLoopBranches, 1000u);
}

TEST(MarkerProfiler, EntryCountLessOrEqualBranchCount)
{
    // Loop entries never exceed body iterations scaled... in general
    // entries <= branches when tripCount >= 1 for every entry.
    for (const auto& binary :
         test::compileFour(test::trickyProgram())) {
        const auto profile = test::profileMarkers(binary);
        for (const auto& proc : binary.procs) {
            (void)proc;
        }
        u64 entries = 0, branches = 0;
        for (u32 m = 0; m < binary.markerCount(); ++m) {
            if (binary.markers[m].kind == bin::MarkerKind::LoopEntry)
                entries += profile.counts[m];
            if (binary.markers[m].kind == bin::MarkerKind::LoopBranch)
                branches += profile.counts[m];
        }
        EXPECT_LE(entries, branches) << binary.displayName();
    }
}

TEST(BbvAccumulator, FlushProducesSortedSparseVector)
{
    prof::BbvAccumulator accum(10);
    EXPECT_TRUE(accum.empty());
    accum.add(7, 3.0);
    accum.add(2, 1.0);
    accum.add(7, 2.0);
    EXPECT_FALSE(accum.empty());
    const sp::SparseVec vec = accum.flush();
    ASSERT_EQ(vec.size(), 2u);
    EXPECT_EQ(vec[0].first, 2u);
    EXPECT_DOUBLE_EQ(vec[0].second, 1.0);
    EXPECT_EQ(vec[1].first, 7u);
    EXPECT_DOUBLE_EQ(vec[1].second, 5.0);
    EXPECT_TRUE(accum.empty());
    EXPECT_TRUE(accum.flush().empty());
}

TEST(FliCollector, IntervalsPartitionTheRun)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 5000);

    const auto& fvs = pass.fliIntervals;
    ASSERT_GT(fvs.size(), 3u);
    InstrCount sum = 0;
    for (std::size_t i = 0; i < fvs.size(); ++i) {
        sum += fvs.lengths[i];
        if (i + 1 < fvs.size()) {
            EXPECT_GE(fvs.lengths[i], 5000u);
        }
    }
    EXPECT_EQ(sum, pass.totalInstructions);

    // Boundaries are the cumulative ends.
    ASSERT_EQ(pass.fliBoundaries.size(), fvs.size());
    InstrCount cumulative = 0;
    for (std::size_t i = 0; i < fvs.size(); ++i) {
        cumulative += fvs.lengths[i];
        EXPECT_EQ(pass.fliBoundaries[i], cumulative);
    }
}

TEST(FliCollector, BbvValuesSumToIntervalLength)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 5000);
    for (std::size_t i = 0; i < pass.fliIntervals.size(); ++i) {
        EXPECT_NEAR(sp::sparseSum(pass.fliIntervals.vectors[i]),
                    static_cast<double>(pass.fliIntervals.lengths[i]),
                    1e-6);
    }
}

TEST(FliCollector, IntervalSizeRoughlyTarget)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 4000);
    // Every interval except the last is within target + max block
    // size of the target.
    u32 maxBlock = 0;
    for (const auto& blk : binary.blocks)
        maxBlock = std::max(maxBlock, blk.instrs);
    for (std::size_t i = 0; i + 1 < pass.fliIntervals.size(); ++i) {
        EXPECT_LT(pass.fliIntervals.lengths[i], 4000u + maxBlock);
    }
}

TEST(FliCollector, ZeroTargetFatal)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    exec::Engine engine(binary);
    EXPECT_EXIT(prof::FliBbvCollector(engine, 0),
                ::testing::ExitedWithCode(1), "target");
}

TEST(ProfilePass, DeterministicAcrossCalls)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target64u);
    const prof::ProfilePass a = prof::runProfilePass(binary, 5000);
    const prof::ProfilePass b = prof::runProfilePass(binary, 5000);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.markers.counts, b.markers.counts);
    EXPECT_EQ(a.fliBoundaries, b.fliBoundaries);
}
