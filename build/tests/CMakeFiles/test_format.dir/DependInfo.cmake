
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_format.cc" "tests/CMakeFiles/test_format.dir/test_format.cc.o" "gcc" "tests/CMakeFiles/test_format.dir/test_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/xbsp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xbsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/xbsp_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/xbsp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xbsp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xbsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/xbsp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xbsp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/xbsp_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xbsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/simpoint/CMakeFiles/xbsp_simpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xbsp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/xbsp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
