file(REMOVE_RECURSE
  "CMakeFiles/test_simpoint_io.dir/test_simpoint_io.cc.o"
  "CMakeFiles/test_simpoint_io.dir/test_simpoint_io.cc.o.d"
  "test_simpoint_io"
  "test_simpoint_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpoint_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
