# Empty dependencies file for test_simpoint_io.
# This may be replaced when dependencies are built.
