# Empty dependencies file for test_mappable.
# This may be replaced when dependencies are built.
