file(REMOVE_RECURSE
  "CMakeFiles/test_mappable.dir/test_mappable.cc.o"
  "CMakeFiles/test_mappable.dir/test_mappable.cc.o.d"
  "test_mappable"
  "test_mappable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mappable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
