file(REMOVE_RECURSE
  "CMakeFiles/test_snapshots.dir/test_snapshots.cc.o"
  "CMakeFiles/test_snapshots.dir/test_snapshots.cc.o.d"
  "test_snapshots"
  "test_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
