# Empty dependencies file for test_regionspec.
# This may be replaced when dependencies are built.
