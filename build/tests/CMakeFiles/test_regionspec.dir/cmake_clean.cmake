file(REMOVE_RECURSE
  "CMakeFiles/test_regionspec.dir/test_regionspec.cc.o"
  "CMakeFiles/test_regionspec.dir/test_regionspec.cc.o.d"
  "test_regionspec"
  "test_regionspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regionspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
