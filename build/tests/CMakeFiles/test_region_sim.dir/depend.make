# Empty dependencies file for test_region_sim.
# This may be replaced when dependencies are built.
