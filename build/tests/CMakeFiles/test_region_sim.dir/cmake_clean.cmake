file(REMOVE_RECURSE
  "CMakeFiles/test_region_sim.dir/test_region_sim.cc.o"
  "CMakeFiles/test_region_sim.dir/test_region_sim.cc.o.d"
  "test_region_sim"
  "test_region_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
