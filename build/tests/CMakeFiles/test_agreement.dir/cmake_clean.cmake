file(REMOVE_RECURSE
  "CMakeFiles/test_agreement.dir/test_agreement.cc.o"
  "CMakeFiles/test_agreement.dir/test_agreement.cc.o.d"
  "test_agreement"
  "test_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
