file(REMOVE_RECURSE
  "CMakeFiles/test_crossbin_property.dir/test_crossbin_property.cc.o"
  "CMakeFiles/test_crossbin_property.dir/test_crossbin_property.cc.o.d"
  "test_crossbin_property"
  "test_crossbin_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbin_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
