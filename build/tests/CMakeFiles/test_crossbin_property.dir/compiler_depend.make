# Empty compiler generated dependencies file for test_crossbin_property.
# This may be replaced when dependencies are built.
