# Empty compiler generated dependencies file for test_mem_patterns.
# This may be replaced when dependencies are built.
