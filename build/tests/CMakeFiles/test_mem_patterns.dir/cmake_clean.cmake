file(REMOVE_RECURSE
  "CMakeFiles/test_mem_patterns.dir/test_mem_patterns.cc.o"
  "CMakeFiles/test_mem_patterns.dir/test_mem_patterns.cc.o.d"
  "test_mem_patterns"
  "test_mem_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
