file(REMOVE_RECURSE
  "CMakeFiles/test_vli.dir/test_vli.cc.o"
  "CMakeFiles/test_vli.dir/test_vli.cc.o.d"
  "test_vli"
  "test_vli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
