# Empty compiler generated dependencies file for test_vli.
# This may be replaced when dependencies are built.
