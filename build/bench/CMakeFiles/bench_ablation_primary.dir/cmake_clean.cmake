file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_primary.dir/bench_ablation_primary.cpp.o"
  "CMakeFiles/bench_ablation_primary.dir/bench_ablation_primary.cpp.o.d"
  "bench_ablation_primary"
  "bench_ablation_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
