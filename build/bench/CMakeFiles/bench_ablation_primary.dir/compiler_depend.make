# Empty compiler generated dependencies file for bench_ablation_primary.
# This may be replaced when dependencies are built.
