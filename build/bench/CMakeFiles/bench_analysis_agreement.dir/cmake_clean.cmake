file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_agreement.dir/bench_analysis_agreement.cpp.o"
  "CMakeFiles/bench_analysis_agreement.dir/bench_analysis_agreement.cpp.o.d"
  "bench_analysis_agreement"
  "bench_analysis_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
