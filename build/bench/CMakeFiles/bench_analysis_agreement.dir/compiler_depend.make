# Empty compiler generated dependencies file for bench_analysis_agreement.
# This may be replaced when dependencies are built.
