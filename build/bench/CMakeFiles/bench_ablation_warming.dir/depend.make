# Empty dependencies file for bench_ablation_warming.
# This may be replaced when dependencies are built.
