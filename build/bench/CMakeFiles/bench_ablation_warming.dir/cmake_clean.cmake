file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_warming.dir/bench_ablation_warming.cpp.o"
  "CMakeFiles/bench_ablation_warming.dir/bench_ablation_warming.cpp.o.d"
  "bench_ablation_warming"
  "bench_ablation_warming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_warming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
