file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gcc_phases.dir/bench_table2_gcc_phases.cpp.o"
  "CMakeFiles/bench_table2_gcc_phases.dir/bench_table2_gcc_phases.cpp.o.d"
  "bench_table2_gcc_phases"
  "bench_table2_gcc_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gcc_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
