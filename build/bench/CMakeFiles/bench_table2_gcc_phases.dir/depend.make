# Empty dependencies file for bench_table2_gcc_phases.
# This may be replaced when dependencies are built.
