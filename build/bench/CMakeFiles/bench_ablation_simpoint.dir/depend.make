# Empty dependencies file for bench_ablation_simpoint.
# This may be replaced when dependencies are built.
