file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simpoint.dir/bench_ablation_simpoint.cpp.o"
  "CMakeFiles/bench_ablation_simpoint.dir/bench_ablation_simpoint.cpp.o.d"
  "bench_ablation_simpoint"
  "bench_ablation_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
