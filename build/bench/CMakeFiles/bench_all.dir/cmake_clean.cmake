file(REMOVE_RECURSE
  "CMakeFiles/bench_all.dir/bench_all.cpp.o"
  "CMakeFiles/bench_all.dir/bench_all.cpp.o.d"
  "bench_all"
  "bench_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
