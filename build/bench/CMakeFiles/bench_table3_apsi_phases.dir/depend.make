# Empty dependencies file for bench_table3_apsi_phases.
# This may be replaced when dependencies are built.
