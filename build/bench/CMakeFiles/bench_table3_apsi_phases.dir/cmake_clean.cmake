file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_apsi_phases.dir/bench_table3_apsi_phases.cpp.o"
  "CMakeFiles/bench_table3_apsi_phases.dir/bench_table3_apsi_phases.cpp.o.d"
  "bench_table3_apsi_phases"
  "bench_table3_apsi_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_apsi_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
