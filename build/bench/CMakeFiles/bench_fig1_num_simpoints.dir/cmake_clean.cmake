file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_num_simpoints.dir/bench_fig1_num_simpoints.cpp.o"
  "CMakeFiles/bench_fig1_num_simpoints.dir/bench_fig1_num_simpoints.cpp.o.d"
  "bench_fig1_num_simpoints"
  "bench_fig1_num_simpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_num_simpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
