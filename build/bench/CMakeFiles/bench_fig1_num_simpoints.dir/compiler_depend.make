# Empty compiler generated dependencies file for bench_fig1_num_simpoints.
# This may be replaced when dependencies are built.
