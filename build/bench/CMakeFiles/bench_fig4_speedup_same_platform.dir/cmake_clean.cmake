file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_speedup_same_platform.dir/bench_fig4_speedup_same_platform.cpp.o"
  "CMakeFiles/bench_fig4_speedup_same_platform.dir/bench_fig4_speedup_same_platform.cpp.o.d"
  "bench_fig4_speedup_same_platform"
  "bench_fig4_speedup_same_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_speedup_same_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
