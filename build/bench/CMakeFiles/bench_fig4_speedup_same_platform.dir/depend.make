# Empty dependencies file for bench_fig4_speedup_same_platform.
# This may be replaced when dependencies are built.
