# Empty dependencies file for bench_fig2_interval_size.
# This may be replaced when dependencies are built.
