file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_memsystem.dir/bench_table1_memsystem.cpp.o"
  "CMakeFiles/bench_table1_memsystem.dir/bench_table1_memsystem.cpp.o.d"
  "bench_table1_memsystem"
  "bench_table1_memsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_memsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
