# Empty dependencies file for bench_table1_memsystem.
# This may be replaced when dependencies are built.
