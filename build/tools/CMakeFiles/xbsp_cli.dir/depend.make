# Empty dependencies file for xbsp_cli.
# This may be replaced when dependencies are built.
