file(REMOVE_RECURSE
  "CMakeFiles/xbsp_cli.dir/xbsp_cli.cpp.o"
  "CMakeFiles/xbsp_cli.dir/xbsp_cli.cpp.o.d"
  "xbsp"
  "xbsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
