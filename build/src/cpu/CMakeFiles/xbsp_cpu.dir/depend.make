# Empty dependencies file for xbsp_cpu.
# This may be replaced when dependencies are built.
