file(REMOVE_RECURSE
  "CMakeFiles/xbsp_cpu.dir/core.cc.o"
  "CMakeFiles/xbsp_cpu.dir/core.cc.o.d"
  "libxbsp_cpu.a"
  "libxbsp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
