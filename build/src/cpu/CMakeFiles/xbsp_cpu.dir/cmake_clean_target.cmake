file(REMOVE_RECURSE
  "libxbsp_cpu.a"
)
