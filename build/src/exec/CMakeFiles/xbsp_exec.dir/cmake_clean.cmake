file(REMOVE_RECURSE
  "CMakeFiles/xbsp_exec.dir/engine.cc.o"
  "CMakeFiles/xbsp_exec.dir/engine.cc.o.d"
  "CMakeFiles/xbsp_exec.dir/trace.cc.o"
  "CMakeFiles/xbsp_exec.dir/trace.cc.o.d"
  "libxbsp_exec.a"
  "libxbsp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
