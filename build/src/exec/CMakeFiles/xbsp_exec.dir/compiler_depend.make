# Empty compiler generated dependencies file for xbsp_exec.
# This may be replaced when dependencies are built.
