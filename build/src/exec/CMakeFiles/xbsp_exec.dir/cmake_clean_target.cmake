file(REMOVE_RECURSE
  "libxbsp_exec.a"
)
