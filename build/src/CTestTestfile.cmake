# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ir")
subdirs("binary")
subdirs("compile")
subdirs("mem")
subdirs("exec")
subdirs("cache")
subdirs("cpu")
subdirs("profile")
subdirs("simpoint")
subdirs("core")
subdirs("sim")
subdirs("workloads")
subdirs("harness")
