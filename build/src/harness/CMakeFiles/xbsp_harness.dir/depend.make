# Empty dependencies file for xbsp_harness.
# This may be replaced when dependencies are built.
