file(REMOVE_RECURSE
  "CMakeFiles/xbsp_harness.dir/experiments.cc.o"
  "CMakeFiles/xbsp_harness.dir/experiments.cc.o.d"
  "libxbsp_harness.a"
  "libxbsp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
