file(REMOVE_RECURSE
  "libxbsp_harness.a"
)
