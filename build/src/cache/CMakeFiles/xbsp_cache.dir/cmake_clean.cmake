file(REMOVE_RECURSE
  "CMakeFiles/xbsp_cache.dir/cache.cc.o"
  "CMakeFiles/xbsp_cache.dir/cache.cc.o.d"
  "CMakeFiles/xbsp_cache.dir/hierarchy.cc.o"
  "CMakeFiles/xbsp_cache.dir/hierarchy.cc.o.d"
  "libxbsp_cache.a"
  "libxbsp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
