# Empty dependencies file for xbsp_cache.
# This may be replaced when dependencies are built.
