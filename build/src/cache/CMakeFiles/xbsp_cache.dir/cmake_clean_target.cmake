file(REMOVE_RECURSE
  "libxbsp_cache.a"
)
