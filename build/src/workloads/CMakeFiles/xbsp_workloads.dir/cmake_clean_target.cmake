file(REMOVE_RECURSE
  "libxbsp_workloads.a"
)
