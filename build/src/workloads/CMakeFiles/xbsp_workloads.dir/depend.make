# Empty dependencies file for xbsp_workloads.
# This may be replaced when dependencies are built.
