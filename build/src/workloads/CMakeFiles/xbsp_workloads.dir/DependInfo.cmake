
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ammp.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/ammp.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/ammp.cc.o.d"
  "/root/repo/src/workloads/applu.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/applu.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/applu.cc.o.d"
  "/root/repo/src/workloads/apsi.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/apsi.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/apsi.cc.o.d"
  "/root/repo/src/workloads/art.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/art.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/art.cc.o.d"
  "/root/repo/src/workloads/bzip2.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/bzip2.cc.o.d"
  "/root/repo/src/workloads/crafty.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/crafty.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/crafty.cc.o.d"
  "/root/repo/src/workloads/eon.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/eon.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/eon.cc.o.d"
  "/root/repo/src/workloads/equake.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/equake.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/equake.cc.o.d"
  "/root/repo/src/workloads/fma3d.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/fma3d.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/fma3d.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/gzip.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/gzip.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/gzip.cc.o.d"
  "/root/repo/src/workloads/lucas.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/lucas.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/lucas.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/mcf.cc.o.d"
  "/root/repo/src/workloads/mesa.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/mesa.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/mesa.cc.o.d"
  "/root/repo/src/workloads/perlbmk.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/perlbmk.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/perlbmk.cc.o.d"
  "/root/repo/src/workloads/sixtrack.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/sixtrack.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/sixtrack.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/swim.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/swim.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/swim.cc.o.d"
  "/root/repo/src/workloads/twolf.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/twolf.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/twolf.cc.o.d"
  "/root/repo/src/workloads/vortex.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/vortex.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/vortex.cc.o.d"
  "/root/repo/src/workloads/vpr.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/vpr.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/vpr.cc.o.d"
  "/root/repo/src/workloads/wupwise.cc" "src/workloads/CMakeFiles/xbsp_workloads.dir/wupwise.cc.o" "gcc" "src/workloads/CMakeFiles/xbsp_workloads.dir/wupwise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xbsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/xbsp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
