file(REMOVE_RECURSE
  "CMakeFiles/xbsp_simpoint.dir/bic.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/bic.cc.o.d"
  "CMakeFiles/xbsp_simpoint.dir/fvec.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/fvec.cc.o.d"
  "CMakeFiles/xbsp_simpoint.dir/io.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/io.cc.o.d"
  "CMakeFiles/xbsp_simpoint.dir/kmeans.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/kmeans.cc.o.d"
  "CMakeFiles/xbsp_simpoint.dir/projection.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/projection.cc.o.d"
  "CMakeFiles/xbsp_simpoint.dir/simpoint.cc.o"
  "CMakeFiles/xbsp_simpoint.dir/simpoint.cc.o.d"
  "libxbsp_simpoint.a"
  "libxbsp_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
