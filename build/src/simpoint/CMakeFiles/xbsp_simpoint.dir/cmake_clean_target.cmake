file(REMOVE_RECURSE
  "libxbsp_simpoint.a"
)
