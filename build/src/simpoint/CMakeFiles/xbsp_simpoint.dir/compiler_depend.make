# Empty compiler generated dependencies file for xbsp_simpoint.
# This may be replaced when dependencies are built.
