
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simpoint/bic.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/bic.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/bic.cc.o.d"
  "/root/repo/src/simpoint/fvec.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/fvec.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/fvec.cc.o.d"
  "/root/repo/src/simpoint/io.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/io.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/io.cc.o.d"
  "/root/repo/src/simpoint/kmeans.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/kmeans.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/kmeans.cc.o.d"
  "/root/repo/src/simpoint/projection.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/projection.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/projection.cc.o.d"
  "/root/repo/src/simpoint/simpoint.cc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/simpoint.cc.o" "gcc" "src/simpoint/CMakeFiles/xbsp_simpoint.dir/simpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xbsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
