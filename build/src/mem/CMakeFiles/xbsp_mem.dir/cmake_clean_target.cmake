file(REMOVE_RECURSE
  "libxbsp_mem.a"
)
