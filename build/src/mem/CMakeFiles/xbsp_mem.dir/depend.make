# Empty dependencies file for xbsp_mem.
# This may be replaced when dependencies are built.
