file(REMOVE_RECURSE
  "CMakeFiles/xbsp_mem.dir/pattern.cc.o"
  "CMakeFiles/xbsp_mem.dir/pattern.cc.o.d"
  "libxbsp_mem.a"
  "libxbsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
