file(REMOVE_RECURSE
  "CMakeFiles/xbsp_ir.dir/builder.cc.o"
  "CMakeFiles/xbsp_ir.dir/builder.cc.o.d"
  "CMakeFiles/xbsp_ir.dir/program.cc.o"
  "CMakeFiles/xbsp_ir.dir/program.cc.o.d"
  "libxbsp_ir.a"
  "libxbsp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
