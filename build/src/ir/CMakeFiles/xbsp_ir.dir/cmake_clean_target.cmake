file(REMOVE_RECURSE
  "libxbsp_ir.a"
)
