# Empty compiler generated dependencies file for xbsp_ir.
# This may be replaced when dependencies are built.
