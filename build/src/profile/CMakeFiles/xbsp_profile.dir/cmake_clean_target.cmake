file(REMOVE_RECURSE
  "libxbsp_profile.a"
)
