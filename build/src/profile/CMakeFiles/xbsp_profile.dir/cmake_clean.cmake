file(REMOVE_RECURSE
  "CMakeFiles/xbsp_profile.dir/profile.cc.o"
  "CMakeFiles/xbsp_profile.dir/profile.cc.o.d"
  "libxbsp_profile.a"
  "libxbsp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
