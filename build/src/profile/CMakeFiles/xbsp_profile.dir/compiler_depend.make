# Empty compiler generated dependencies file for xbsp_profile.
# This may be replaced when dependencies are built.
