file(REMOVE_RECURSE
  "CMakeFiles/xbsp_sim.dir/detailed.cc.o"
  "CMakeFiles/xbsp_sim.dir/detailed.cc.o.d"
  "CMakeFiles/xbsp_sim.dir/estimate.cc.o"
  "CMakeFiles/xbsp_sim.dir/estimate.cc.o.d"
  "CMakeFiles/xbsp_sim.dir/region.cc.o"
  "CMakeFiles/xbsp_sim.dir/region.cc.o.d"
  "CMakeFiles/xbsp_sim.dir/report.cc.o"
  "CMakeFiles/xbsp_sim.dir/report.cc.o.d"
  "CMakeFiles/xbsp_sim.dir/snapshots.cc.o"
  "CMakeFiles/xbsp_sim.dir/snapshots.cc.o.d"
  "CMakeFiles/xbsp_sim.dir/study.cc.o"
  "CMakeFiles/xbsp_sim.dir/study.cc.o.d"
  "libxbsp_sim.a"
  "libxbsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
