
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/detailed.cc" "src/sim/CMakeFiles/xbsp_sim.dir/detailed.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/detailed.cc.o.d"
  "/root/repo/src/sim/estimate.cc" "src/sim/CMakeFiles/xbsp_sim.dir/estimate.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/estimate.cc.o.d"
  "/root/repo/src/sim/region.cc" "src/sim/CMakeFiles/xbsp_sim.dir/region.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/region.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/xbsp_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/snapshots.cc" "src/sim/CMakeFiles/xbsp_sim.dir/snapshots.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/snapshots.cc.o.d"
  "/root/repo/src/sim/study.cc" "src/sim/CMakeFiles/xbsp_sim.dir/study.cc.o" "gcc" "src/sim/CMakeFiles/xbsp_sim.dir/study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xbsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/xbsp_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/xbsp_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xbsp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xbsp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/xbsp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/xbsp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/simpoint/CMakeFiles/xbsp_simpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xbsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xbsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/xbsp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
