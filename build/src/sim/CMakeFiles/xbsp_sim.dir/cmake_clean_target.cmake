file(REMOVE_RECURSE
  "libxbsp_sim.a"
)
