# Empty compiler generated dependencies file for xbsp_sim.
# This may be replaced when dependencies are built.
