file(REMOVE_RECURSE
  "CMakeFiles/xbsp_core.dir/agreement.cc.o"
  "CMakeFiles/xbsp_core.dir/agreement.cc.o.d"
  "CMakeFiles/xbsp_core.dir/mappable.cc.o"
  "CMakeFiles/xbsp_core.dir/mappable.cc.o.d"
  "CMakeFiles/xbsp_core.dir/regionspec.cc.o"
  "CMakeFiles/xbsp_core.dir/regionspec.cc.o.d"
  "CMakeFiles/xbsp_core.dir/vli.cc.o"
  "CMakeFiles/xbsp_core.dir/vli.cc.o.d"
  "libxbsp_core.a"
  "libxbsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
