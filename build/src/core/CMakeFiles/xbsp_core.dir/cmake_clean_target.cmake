file(REMOVE_RECURSE
  "libxbsp_core.a"
)
