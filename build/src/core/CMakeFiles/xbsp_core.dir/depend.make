# Empty dependencies file for xbsp_core.
# This may be replaced when dependencies are built.
