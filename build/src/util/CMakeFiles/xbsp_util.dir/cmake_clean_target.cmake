file(REMOVE_RECURSE
  "libxbsp_util.a"
)
