file(REMOVE_RECURSE
  "CMakeFiles/xbsp_util.dir/format.cc.o"
  "CMakeFiles/xbsp_util.dir/format.cc.o.d"
  "CMakeFiles/xbsp_util.dir/logging.cc.o"
  "CMakeFiles/xbsp_util.dir/logging.cc.o.d"
  "CMakeFiles/xbsp_util.dir/options.cc.o"
  "CMakeFiles/xbsp_util.dir/options.cc.o.d"
  "CMakeFiles/xbsp_util.dir/rng.cc.o"
  "CMakeFiles/xbsp_util.dir/rng.cc.o.d"
  "CMakeFiles/xbsp_util.dir/stats.cc.o"
  "CMakeFiles/xbsp_util.dir/stats.cc.o.d"
  "CMakeFiles/xbsp_util.dir/table.cc.o"
  "CMakeFiles/xbsp_util.dir/table.cc.o.d"
  "libxbsp_util.a"
  "libxbsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
