# Empty dependencies file for xbsp_util.
# This may be replaced when dependencies are built.
