file(REMOVE_RECURSE
  "CMakeFiles/xbsp_binary.dir/binary.cc.o"
  "CMakeFiles/xbsp_binary.dir/binary.cc.o.d"
  "libxbsp_binary.a"
  "libxbsp_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
