# Empty compiler generated dependencies file for xbsp_binary.
# This may be replaced when dependencies are built.
