file(REMOVE_RECURSE
  "libxbsp_binary.a"
)
