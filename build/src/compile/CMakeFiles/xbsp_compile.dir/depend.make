# Empty dependencies file for xbsp_compile.
# This may be replaced when dependencies are built.
