file(REMOVE_RECURSE
  "libxbsp_compile.a"
)
