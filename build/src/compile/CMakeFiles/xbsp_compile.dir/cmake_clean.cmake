file(REMOVE_RECURSE
  "CMakeFiles/xbsp_compile.dir/compiler.cc.o"
  "CMakeFiles/xbsp_compile.dir/compiler.cc.o.d"
  "CMakeFiles/xbsp_compile.dir/target.cc.o"
  "CMakeFiles/xbsp_compile.dir/target.cc.o.d"
  "libxbsp_compile.a"
  "libxbsp_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbsp_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
