file(REMOVE_RECURSE
  "CMakeFiles/isa_extension_study.dir/isa_extension_study.cpp.o"
  "CMakeFiles/isa_extension_study.dir/isa_extension_study.cpp.o.d"
  "isa_extension_study"
  "isa_extension_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_extension_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
