# Empty compiler generated dependencies file for isa_extension_study.
# This may be replaced when dependencies are built.
