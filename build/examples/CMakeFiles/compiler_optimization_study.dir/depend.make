# Empty dependencies file for compiler_optimization_study.
# This may be replaced when dependencies are built.
