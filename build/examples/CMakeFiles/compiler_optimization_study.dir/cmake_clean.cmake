file(REMOVE_RECURSE
  "CMakeFiles/compiler_optimization_study.dir/compiler_optimization_study.cpp.o"
  "CMakeFiles/compiler_optimization_study.dir/compiler_optimization_study.cpp.o.d"
  "compiler_optimization_study"
  "compiler_optimization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_optimization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
