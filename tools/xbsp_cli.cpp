/**
 * @file
 * `xbsp` — command-line driver for the library.
 *
 *   xbsp list                         workloads and descriptions
 *   xbsp describe  --workload W --target 32o
 *                                     dump the compiled binary
 *   xbsp bbv       --workload W --target 32u --interval 250000
 *                  --out prefix       collect BBVs -> prefix.bb
 *                                     (+ prefix.lens VLI lengths)
 *   xbsp simpoints --bb file [--lengths file] --maxk 10
 *                  --out prefix       cluster a .bb file (stock
 *                                     SimPoint replacement) ->
 *                                     prefix.simpoints/.weights/.labels
 *   xbsp study     --workload W [--stats] [--regions prefix]
 *                                     full cross-binary pipeline; with
 *                                     --regions, write per-binary
 *                                     region-spec files
 *   xbsp graph     [W...] [--dot] [--run] [--out file]
 *                                     dump the stage task graph the
 *                                     scheduler would execute for the
 *                                     workloads (default --workload)
 *                                     as JSON (or DOT); with --run,
 *                                     execute it first so every node
 *                                     carries its final status
 *   xbsp cache stats|gc|clear         inspect / collect / wipe the
 *                                     artifact cache (--cache-dir or
 *                                     XBSP_CACHE_DIR)
 *   xbsp top       --metrics-socket S [--interval-ms N] [--count N]
 *                  [--plain]          live view of a running study:
 *                                     scheduler utilization, per-stage
 *                                     node counts, store hit rate,
 *                                     E-step throughput, progress ETA
 *                                     (scrapes the exposition endpoint
 *                                     another xbsp process serves via
 *                                     --metrics-socket / XBSP_METRICS)
 *   xbsp manifest  [file] [--json]    pretty-print a provenance
 *                                     manifest.json written by
 *                                     --manifest-out / --stats-out
 *   xbsp serve     --serve-socket S [--serve-tcp P] --cache-dir D
 *                                     long-lived daemon: accepts
 *                                     workers (`xbsp work`) and suite
 *                                     requests (`xbsp submit`) on one
 *                                     listener; identical in-flight
 *                                     stages single-flight and the
 *                                     artifact store stays warm
 *                                     across requests
 *   xbsp work      --connect A [--worker-name N]
 *                                     remote worker: executes stage
 *                                     tasks for a daemon, publishing
 *                                     artifacts through the shared
 *                                     cache directory
 *   xbsp submit    [figures...] --connect A [--workloads W,...]
 *                  [--local]          request figure reports from a
 *                                     daemon (default figure3); with
 *                                     --local, render in-process
 *                                     through the identical code path
 *                                     (the byte-compare baseline)
 *   xbsp cores     [--workloads W,...] [--scale S]
 *                                     cross-microarchitecture
 *                                     experiment: the same binaries
 *                                     studied under every timing
 *                                     core (inorder and decoupled),
 *                                     reporting per-binary CPI error
 *                                     and per-pair speedup error
 *                                     under each
 *
 * Every command that runs pipeline stages honours --cache-dir (or the
 * XBSP_CACHE_DIR environment variable) to memoize compile, profile,
 * clustering, VLI and detailed-simulation artifacts on disk, and
 * --no-cache to force full recomputation.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "binary/binary.hh"
#include "core/regionspec.hh"
#include "cpu/core.hh"
#include "dist/client.hh"
#include "dist/server.hh"
#include "dist/stagerun.hh"
#include "dist/worker.hh"
#include "exec/compiled.hh"
#include "harness/experiments.hh"
#include "obs/live/endpoint.hh"
#include "obs/live/exposition.hh"
#include "obs/setup.hh"
#include "pipeline/taskgraph.hh"
#include "profile/profile.hh"
#include "sim/report.hh"
#include "sim/study.hh"
#include "simpoint/io.hh"
#include "store/store.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/simd/simd.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

bin::Target
parseTarget(const std::string& name)
{
    for (const auto& target : compile::standardTargets()) {
        if (bin::targetName(target) == name)
            return target;
    }
    fatal("unknown target '{}' (expected 32u/32o/64u/64o)", name);
}

int
cmdList()
{
    for (const auto& info : workloads::suite())
        std::printf("%-10s %s\n", info.name.c_str(),
                    info.description.c_str());
    return 0;
}

int
cmdDescribe(const Options& options)
{
    const bin::Binary binary = compile::compileProgram(
        workloads::makeWorkload(options.getString("workload"),
                                options.getDouble("scale")),
        parseTarget(options.getString("target")));
    std::cout << bin::describe(binary);
    return 0;
}

int
cmdBbv(const Options& options)
{
    const bin::Binary binary = compile::compileProgram(
        workloads::makeWorkload(options.getString("workload"),
                                options.getDouble("scale")),
        parseTarget(options.getString("target")));
    const prof::ProfilePass pass = prof::runProfilePass(
        binary, options.getUint("interval"));

    const std::string prefix = options.getString("out");
    if (prefix.empty())
        fatal("bbv requires --out <prefix>");
    std::ofstream bb(prefix + ".bb");
    sp::writeBbvFile(bb, pass.fliIntervals);
    std::ofstream lens(prefix + ".lens");
    sp::writeLengthsFile(lens, pass.fliIntervals);
    inform("wrote {} intervals to {}.bb / {}.lens",
           pass.fliIntervals.size(), prefix, prefix);
    return 0;
}

int
cmdSimpoints(const Options& options)
{
    const std::string bbPath = options.getString("bb");
    if (bbPath.empty())
        fatal("simpoints requires --bb <file>");
    std::ifstream bb(bbPath);
    if (!bb)
        fatal("cannot open '{}'", bbPath);
    sp::FrequencyVectorSet fvs = sp::readBbvFile(bb);
    if (const std::string lens = options.getString("lengths");
        !lens.empty()) {
        std::ifstream ls(lens);
        if (!ls)
            fatal("cannot open '{}'", lens);
        sp::readLengthsFile(ls, fvs);
    }

    sp::SimPointOptions spOptions;
    spOptions.maxK = static_cast<u32>(options.getUint("maxk"));
    spOptions.seed = options.getUint("seed");
    spOptions.accelerate = options.getBool("accel");
    const sp::SimPointResult result =
        sp::pickSimulationPoints(fvs, spOptions);

    const std::string prefix = options.getString("out");
    if (prefix.empty())
        fatal("simpoints requires --out <prefix>");
    std::ofstream sims(prefix + ".simpoints");
    sp::writeSimpointsFile(sims, result);
    std::ofstream weights(prefix + ".weights");
    sp::writeWeightsFile(weights, result);
    std::ofstream labels(prefix + ".labels");
    sp::writeLabelsFile(labels, result);
    inform("{} intervals -> {} phases; wrote {}.simpoints/.weights/"
           ".labels", fvs.size(), result.phases.size(), prefix);
    return 0;
}

int
cmdStudy(const Options& options)
{
    sim::StudyConfig config = harness::defaultStudyConfig();
    config.intervalTarget = options.getUint("interval");
    config.simpoint.maxK = static_cast<u32>(options.getUint("maxk"));
    config.simpoint.seed = options.getUint("seed");
    config.simpoint.accelerate = options.getBool("accel");
    const sim::CrossBinaryStudy study = sim::CrossBinaryStudy::run(
        workloads::makeWorkload(options.getString("workload"),
                                options.getDouble("scale")),
        config);

    if (options.getBool("stats")) {
        sim::dumpStudyStats(std::cout, study);
    } else {
        std::printf("%s: %zu mappable points, %zu VLI intervals, "
                    "%zu phases\n", study.programName().c_str(),
                    study.mappable().points.size(),
                    study.partition().intervalCount(),
                    study.vliClustering().phases.size());
        for (const auto& bs : study.perBinary()) {
            std::printf("  %-4s true CPI %7.3f  fli err %6.2f%%  "
                        "vli err %6.2f%%\n",
                        bin::targetName(bs.target).c_str(),
                        bs.vliEstimate.trueCpi,
                        bs.fliEstimate.cpiError * 100.0,
                        bs.vliEstimate.cpiError * 100.0);
        }
    }

    if (const std::string prefix = options.getString("regions");
        !prefix.empty()) {
        for (std::size_t b = 0; b < study.perBinary().size(); ++b) {
            const auto& bs = study.perBinary()[b];
            std::vector<double> weights;
            for (const auto& phase : bs.vliEstimate.phases)
                weights.push_back(phase.weight);
            const auto specs = core::buildRegionSpecs(
                study.mappable(), study.partition(),
                study.vliClustering(), b, weights);
            const std::string path =
                prefix + "." + bin::targetName(bs.target) + ".regions";
            std::ofstream os(path);
            core::writeRegionSpecs(os, specs);
            inform("wrote {}", path);
        }
    }
    return 0;
}

int
cmdGraph(const Options& options)
{
    harness::ExperimentConfig config;
    config.workScale = options.getDouble("scale");
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = options.getUint("interval");
    config.study.simpoint.maxK =
        static_cast<u32>(options.getUint("maxk"));
    config.study.simpoint.seed = options.getUint("seed");
    config.study.simpoint.accelerate = options.getBool("accel");

    // Workloads come as positionals after the command; default to
    // the --workload option like the other single-study commands.
    std::vector<std::string> names(options.positional().begin() + 1,
                                   options.positional().end());
    if (names.empty())
        names.push_back(options.getString("workload"));

    harness::SuiteGraph suite;
    harness::buildSuiteGraph(suite, config, names);
    if (options.getBool("run"))
        suite.graph.run(globalPool());

    std::ofstream file;
    std::ostream* os = &std::cout;
    if (const std::string path = options.getString("out");
        !path.empty()) {
        file.open(path);
        if (!file)
            fatal("cannot write '{}'", path);
        os = &file;
    }
    if (options.getBool("dot")) {
        suite.graph.writeDot(*os);
    } else {
        JsonWriter w(*os);
        suite.graph.writeJson(w);
        *os << '\n';
    }
    return 0;
}

int
cmdCache(const Options& options)
{
    store::ArtifactStore& store = store::ArtifactStore::global();
    if (store.directory().empty())
        fatal("cache commands need --cache-dir or XBSP_CACHE_DIR");
    if (options.positional().size() < 2)
        fatal("usage: xbsp cache stats|gc|clear");
    const std::string& action = options.positional()[1];

    if (action == "stats") {
        const store::CacheScan scan = store.scan();
        if (options.getBool("json")) {
            JsonWriter w(std::cout);
            w.beginObject();
            w.member("dir", store.directory());
            w.member("entries", scan.entries);
            w.member("bytes", scan.bytes);
            w.member("tempFiles", scan.tempFiles);
            w.endObject();
            std::cout << '\n';
            return 0;
        }
        std::printf("cache %s: %llu entries, %llu bytes"
                    " (%.1f MiB), %llu stray temp files\n",
                    store.directory().c_str(),
                    static_cast<unsigned long long>(scan.entries),
                    static_cast<unsigned long long>(scan.bytes),
                    static_cast<double>(scan.bytes) / (1024.0 * 1024.0),
                    static_cast<unsigned long long>(scan.tempFiles));
        return 0;
    }
    if (action == "gc") {
        const u64 budget =
            options.getUint("budget-mb") * 1024ull * 1024ull;
        const store::GcResult result = store.gc(budget);
        std::printf("cache gc: kept %llu entries (%llu bytes), "
                    "removed %llu entries (%llu bytes)\n",
                    static_cast<unsigned long long>(result.keptEntries),
                    static_cast<unsigned long long>(result.keptBytes),
                    static_cast<unsigned long long>(
                        result.removedEntries),
                    static_cast<unsigned long long>(
                        result.removedBytes));
        return 0;
    }
    if (action == "clear") {
        const u64 removed = store.clear();
        std::printf("cache clear: removed %llu files\n",
                    static_cast<unsigned long long>(removed));
        return 0;
    }
    fatal("unknown cache action '{}' (expected stats, gc or clear)",
          action);
}

/** Gauge/counter by exposition series name; 0 when absent. */
double
seriesValue(const std::map<std::string, double>& series,
            const std::string& name)
{
    const auto it = series.find(name);
    return it == series.end() ? 0.0 : it->second;
}

/** One rendered frame of the live view. */
std::string
renderTopFrame(const std::map<std::string, double>& series)
{
    std::string out;
    char line[256];
    auto add = [&out, &line] { out += line; };

    const double workers =
        std::max(1.0, seriesValue(series, "xbsp_pool_workers"));
    const double busyRatio = seriesValue(
        series, "xbsp_scheduler_nodeBusy_busy_ratio");
    const double done = seriesValue(series, "xbsp_progress_done");
    const double total = seriesValue(series, "xbsp_progress_steps");
    const double eta =
        seriesValue(series, "xbsp_progress_eta_seconds");
    const double elapsed =
        seriesValue(series, "xbsp_progress_elapsed_seconds");

    std::snprintf(line, sizeof(line),
                  "xbsp top — sample %.0f, period %.0f ms, "
                  "%.0f workers\n",
                  seriesValue(series, "xbsp_sampler_samples_total"),
                  seriesValue(series, "xbsp_sample_delta_seconds") *
                      1e3,
                  workers);
    add();
    std::snprintf(line, sizeof(line),
                  "progress  %.0f/%.0f steps   elapsed %6.1fs   ",
                  done, total, elapsed);
    add();
    if (eta >= 0.0)
        std::snprintf(line, sizeof(line), "eta %6.1fs\n", eta);
    else
        std::snprintf(line, sizeof(line), "eta    n/a\n");
    add();
    std::snprintf(line, sizeof(line),
                  "scheduler %5.1f%% utilized (worker-busy ratio "
                  "%.2f over %.0f workers)\n",
                  100.0 * busyRatio / workers, busyRatio, workers);
    add();

    // Per-stage table from the scheduler.stage.<stage>.<what>
    // counters: running = started - settled.
    out += "\n  stage      running     done    cache  skipped\n";
    const std::string prefix = "xbsp_scheduler_stage_";
    std::vector<std::string> stages;
    for (const auto& [name, value] : series) {
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        const std::string suffix = "_started_total";
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        stages.push_back(name.substr(
            prefix.size(),
            name.size() - prefix.size() - suffix.size()));
    }
    for (const std::string& stage : stages) {
        const std::string base = prefix + stage;
        const double started =
            seriesValue(series, base + "_started_total");
        const double settled =
            seriesValue(series, base + "_settled_total");
        const double cache =
            seriesValue(series, base + "_cache_total");
        const double skipped =
            seriesValue(series, base + "_skipped_total");
        std::snprintf(line, sizeof(line),
                      "  %-9s %8.0f %8.0f %8.0f %8.0f\n",
                      stage.c_str(), started - settled, settled,
                      cache, skipped);
        add();
    }

    const double hits = seriesValue(series, "xbsp_store_hits_total");
    const double misses =
        seriesValue(series, "xbsp_store_misses_total");
    const double probes = hits + misses;
    std::snprintf(line, sizeof(line),
                  "\nstore     %.0f hits / %.0f misses (%5.1f%% hit "
                  "rate)\n",
                  hits, misses,
                  probes > 0.0 ? 100.0 * hits / probes : 0.0);
    add();
    std::snprintf(
        line, sizeof(line),
        "e-step    %.2f Mdist/s (%.0f distances total)\n",
        seriesValue(series, "xbsp_kmeans_estep_distances_rate") / 1e6,
        seriesValue(series, "xbsp_kmeans_estep_distances_total"));
    add();

    // Distributed executor, shown only when a serve daemon has ever
    // seen a worker or shipped a task (the series exist but are all
    // zero in plain local runs).
    const double distConnected =
        seriesValue(series, "xbsp_dist_workers_connected_total");
    const double distSubmitted =
        seriesValue(series, "xbsp_dist_tasks_submitted_total");
    if (distConnected > 0.0 || distSubmitted > 0.0) {
        const double distLost =
            seriesValue(series, "xbsp_dist_workers_lost_total");
        std::snprintf(line, sizeof(line),
                      "dist      %.0f workers (%.0f lost)   tasks "
                      "%.0f sent / %.0f done / %.0f failed / "
                      "%.0f retried / %.0f joined\n",
                      distConnected - distLost, distLost,
                      distSubmitted,
                      seriesValue(series,
                                  "xbsp_dist_tasks_completed_total"),
                      seriesValue(series,
                                  "xbsp_dist_tasks_failed_total"),
                      seriesValue(series,
                                  "xbsp_dist_tasks_retries_total"),
                      seriesValue(series,
                                  "xbsp_dist_tasks_coalesced_total"));
        add();
    }
    return out;
}

int
cmdTop(const Options& options)
{
    std::string socketPath = options.getString("metrics-socket");
    if (socketPath.empty()) {
        if (const char* env = std::getenv("XBSP_METRICS"))
            socketPath = env;
    }
    std::string tcpSpec = options.getString("metrics-tcp");
    if (tcpSpec.empty()) {
        if (const char* env = std::getenv("XBSP_METRICS_TCP"))
            tcpSpec = env;
    }
    const int tcpPort =
        tcpSpec.empty() ? -1 : std::atoi(tcpSpec.c_str());
    if (socketPath.empty() && tcpPort < 0)
        fatal("top needs --metrics-socket PATH (or --metrics-tcp "
              "PORT) pointing at a run started with the same flag");

    const u64 intervalMs =
        std::max<u64>(1, options.getUint("interval-ms"));
    const u64 frames = options.getUint("count");  // 0 = until gone
    const bool plain = options.getBool("plain");

    for (u64 frame = 0; frames == 0 || frame < frames; ++frame) {
        std::string body;
        try {
            body = socketPath.empty()
                       ? obs::httpGetTcp(tcpPort)
                       : obs::httpGetUnix(socketPath);
        } catch (const std::exception& e) {
            if (frame == 0)
                fatal("cannot scrape metrics endpoint: {}", e.what());
            inform("metrics endpoint gone ({}); run finished?",
                   e.what());
            return 0;
        }
        const std::map<std::string, double> series =
            obs::parseExposition(body);
        if (!plain)
            std::fputs("\x1b[H\x1b[2J", stdout);
        std::fputs(renderTopFrame(series).c_str(), stdout);
        std::fflush(stdout);
        if (frames == 0 || frame + 1 < frames)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(intervalMs));
    }
    return 0;
}

int
cmdManifest(const Options& options)
{
    const std::string path = options.positional().size() > 1
                                 ? options.positional()[1]
                                 : std::string("manifest.json");
    JsonValue doc;
    try {
        doc = parseJsonFile(path);
    } catch (const std::exception& e) {
        fatal("cannot read manifest '{}': {}", path, e.what());
    }

    const JsonValue* runs = doc.find("runs");
    if (!runs || !runs->isArray())
        fatal("'{}' is not a manifest (no \"runs\" array)", path);

    if (options.getBool("json")) {
        // Machine-readable mode: round-trip the parsed document
        // through the one canonical emitter (normalized whitespace,
        // member order preserved).
        JsonWriter w(std::cout);
        writeJsonValue(w, doc);
        std::cout << '\n';
        return 0;
    }

    for (std::size_t r = 0; r < runs->size(); ++r) {
        const JsonValue& run = runs->at(r);
        std::printf("run %zu: %s  (config %s, %llu workers, "
                    "%.1f ms)\n",
                    r, run.at("label").asString().c_str(),
                    run.at("configDigest").asString().empty()
                        ? "-"
                        : run.at("configDigest").asString().c_str(),
                    static_cast<unsigned long long>(
                        run.at("workers").asU64()),
                    static_cast<double>(run.at("wallNanos").asU64()) /
                        1e6);
        std::printf("  %4s  %-9s %-8s %-5s %10s %10s %3s  %s\n",
                    "node", "stage", "status", "probe", "wall-ms",
                    "busy-ms", "w", "label");
        const JsonValue& nodes = run.at("nodes");
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const JsonValue& node = nodes.at(i);
            const std::string& key = node.at("storeKey").asString();
            // Present only when the node executed on a remote worker
            // (xbsp serve + xbsp work).
            const JsonValue* remote = node.find("remoteWorker");
            const std::string via =
                remote ? "  via=" + remote->asString() : "";
            std::printf(
                "  %4llu  %-9s %-8s %-5s %10.2f %10.2f %3llu  "
                "%s%s%s%s\n",
                static_cast<unsigned long long>(
                    node.at("node").asU64()),
                node.at("stage").asString().c_str(),
                node.at("status").asString().c_str(),
                node.at("probe").asString().c_str(),
                static_cast<double>(node.at("wallNanos").asU64()) /
                    1e6,
                static_cast<double>(node.at("busyNanos").asU64()) /
                    1e6,
                static_cast<unsigned long long>(
                    node.at("worker").asU64()),
                node.at("label").asString().c_str(),
                key.empty() ? "" : "  key=",
                key.empty() ? "" : key.substr(0, 12).c_str(),
                via.c_str());
        }
    }
    return 0;
}

/** Split a comma-separated list, skipping empty segments. */
std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(text);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** SuiteRequest from the submit flags + positional figure names. */
dist::SuiteRequest
suiteRequestFromOptions(const Options& options)
{
    dist::SuiteRequest request;
    request.figures.assign(options.positional().begin() + 1,
                           options.positional().end());
    request.workloads = splitList(options.getString("workloads"));
    request.workScale = options.getDouble("scale");
    request.intervalTarget = options.getUint("interval");
    request.maxK = options.getUint("maxk");
    request.seed = options.getUint("seed");
    // Resolved client-side (--core already applied in main) so the
    // report never depends on the daemon's environment.
    request.core =
        std::string(cpu::coreKindName(cpu::activeCoreKind()));
    return request;
}

int
cmdCores(const Options& options)
{
    harness::ExperimentConfig config;
    config.workScale = options.getDouble("scale");
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = options.getUint("interval");
    config.study.simpoint.maxK =
        static_cast<u32>(options.getUint("maxk"));
    config.study.simpoint.seed = options.getUint("seed");
    config.study.simpoint.accelerate = options.getBool("accel");
    config.workloads = splitList(options.getString("workloads"));
    if (config.workloads.empty())
        config.workloads.push_back(options.getString("workload"));

    const harness::CrossCoreReport report =
        harness::crossCoreComparison(config);
    report.cpi.print(std::cout);
    std::cout << "\n";
    report.speedup.print(std::cout);
    return 0;
}

// serve() blocks inside accept(); SIGTERM/SIGINT must reach the
// server object to end the loop and drain the workers gracefully.
dist::Server* activeServer = nullptr;

void
onServeSignal(int)
{
    if (activeServer)
        activeServer->stop();
}

int
cmdServe(const Options& options)
{
    dist::ServerOptions so;
    so.unixPath = options.getString("serve-socket");
    const std::string tcp = options.getString("serve-tcp");
    if (!tcp.empty()) {
        // Validate like parseAddress does client-side; atoi would
        // turn "abc" into 0 and silently bind an ephemeral port.
        // 0 stays legal here: it means "pick a port" (tests use it).
        char* end = nullptr;
        const long port = std::strtol(tcp.c_str(), &end, 10);
        if (end == tcp.c_str() || *end != '\0' || port < 0 ||
            port > 65535)
            fatal("bad --serve-tcp port '{}' (want 0-65535)", tcp);
        so.tcpPort = static_cast<int>(port);
    }
    if (so.unixPath.empty() && tcp.empty())
        fatal("serve needs --serve-socket PATH and/or "
              "--serve-tcp PORT");
    so.name = options.getString("worker-name");
    so.taskTimeoutMs =
        static_cast<int>(options.getUint("task-timeout-ms"));

    dist::Server server(so);
    activeServer = &server;
    struct sigaction sa = {};
    sa.sa_handler = onServeSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    if (so.tcpPort >= 0)
        inform("serving on tcp:{}{}", server.boundPort(),
               so.unixPath.empty() ? ""
                                   : " and unix:" + so.unixPath);
    else
        inform("serving on unix:{}", so.unixPath);
    server.serve();
    activeServer = nullptr;
    return 0;
}

int
cmdWork(const Options& options)
{
    dist::WorkerOptions wo;
    wo.connect = options.getString("connect");
    if (wo.connect.empty())
        fatal("work needs --connect unix:PATH or tcp:PORT");
    wo.name = options.getString("worker-name");
    return dist::runWorker(wo);
}

int
cmdSubmit(const Options& options)
{
    const dist::SuiteRequest request = suiteRequestFromOptions(options);
    if (options.getBool("local")) {
        // Same rendering path the daemon uses — the byte-compare
        // baseline for distributed runs.
        try {
            std::cout << dist::renderSuiteReport(request, nullptr);
        } catch (const std::exception& e) {
            fatal("{}", e.what());
        }
        return 0;
    }
    const std::string address = options.getString("connect");
    if (address.empty())
        fatal("submit needs --connect unix:PATH or tcp:PORT "
              "(or --local)");
    dist::SuiteResponse response;
    try {
        response = dist::submitSuite(address, request);
    } catch (const std::exception& e) {
        fatal("submit to {} failed: {}", address, e.what());
    }
    if (!response.ok)
        fatal("server error: {}", response.error);
    std::cout << response.report;
    return 0;
}

/**
 * Hidden helper for the cross-process codec test: decode a
 * serialized StageTask from the given file, re-encode it through
 * this process's codecs, write the bytes to <file>.rt and print
 * "<stage-key> match|MISMATCH".  A parent test process encodes in
 * one address space and byte-compares what a fresh exec'd process
 * produces — the strongest form of the codec round-trip guarantee.
 */
int
cmdCodecRoundtrip(const Options& options)
{
    if (options.positional().size() < 2)
        fatal("usage: xbsp codec-roundtrip <payload-file>");
    const std::string& path = options.positional()[1];
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '{}'", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string original = buf.str();

    dist::StageTask task;
    try {
        task = dist::decodeStageTask(original);
    } catch (const serial::DecodeError& e) {
        fatal("decode '{}': {}", path, e.what());
    }
    const std::string reencoded = dist::encodeStageTask(task);
    std::ofstream out(path + ".rt", std::ios::binary);
    out.write(reencoded.data(),
              static_cast<std::streamsize>(reencoded.size()));
    if (!out)
        fatal("cannot write '{}'", path + ".rt");
    out.close();
    std::printf("%s %s\n", dist::stageTaskKey(task).c_str(),
                reencoded == original ? "match" : "MISMATCH");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options options(
        "xbsp <command> [options] — commands: list, describe, bbv, "
        "simpoints, study, graph, cache, top, manifest, serve, "
        "work, submit, cores");
    options.addString("workload", "workload name", "swim");
    options.addString("target", "binary target (32u/32o/64u/64o)",
                      "32u");
    options.addDouble("scale", "work scale", 1.0);
    options.addUint("interval", "interval target (instructions)",
                    250000);
    options.addUint("maxk", "SimPoint cluster cap", 10);
    options.addUint("seed", "SimPoint seed", 42);
    options.addBool("accel",
                    "accelerated clustering engine (exact; see "
                    "DESIGN.md)", true);
    options.addString("bb", "input .bb file (simpoints command)", "");
    options.addString("lengths", "input lengths file", "");
    options.addString("out", "output path prefix", "");
    options.addString("regions", "region-spec output prefix", "");
    options.addBool("stats", "dump gem5-style stats (study)", false);
    options.addBool("dot", "emit Graphviz DOT instead of JSON (graph)",
                    false);
    options.addBool("run",
                    "execute the graph before dumping it, so nodes "
                    "carry final statuses (graph)", false);
    options.addString("cache-dir",
                      "artifact cache directory (default: "
                      "XBSP_CACHE_DIR)", "");
    options.addBool("cache",
                    "consult the artifact cache (--no-cache forces "
                    "recomputation)", true);
    options.addUint("budget-mb", "byte budget for `cache gc`, in MiB",
                    1024);
    options.addUint("interval-ms", "refresh period for `top`", 1000);
    options.addUint("count",
                    "frames to render before exiting `top` (0 = "
                    "until the endpoint goes away)", 0);
    options.addBool("plain",
                    "no screen clearing between `top` frames", false);
    options.addBool("json",
                    "machine-readable output (`cache stats`, "
                    "`manifest`)", false);
    options.addString("serve-socket",
                      "unix socket the daemon listens on (`serve`)",
                      "");
    options.addString("serve-tcp",
                      "loopback TCP port the daemon listens on "
                      "(`serve`; 0 = ephemeral, printed at startup)",
                      "");
    options.addString("connect",
                      "daemon address for `work`/`submit`: unix:PATH "
                      "or tcp:PORT", "");
    options.addString("worker-name",
                      "self-reported identity (`serve`/`work`; "
                      "default: pid)", "");
    options.addString("workloads",
                      "comma-separated workload subset for `submit` "
                      "(empty = full suite)", "");
    options.addBool("local",
                    "render `submit` in-process through the daemon's "
                    "exact code path (byte-compare baseline)", false);
    options.addUint("task-timeout-ms",
                    "per-stage deadline before a worker is declared "
                    "dead (`serve`)", 120000);
    options.addString("simd",
                      "kernel dispatch: off|scalar|auto|on|avx2|neon "
                      "(default: XBSP_SIMD, else best available; pure "
                      "speed knob — results are bit-identical)", "");
    options.addString("engine",
                      "execution engine: interp|compiled (default: "
                      "XBSP_ENGINE, else compiled; pure speed knob — "
                      "results are bit-identical)", "");
    options.addString("core",
                      "timing core: inorder|decoupled (default: "
                      "XBSP_CORE, else inorder; a model knob — "
                      "changes results and store keys)", "");
    options.addJobs();
    obs::addCliOptions(options);
    if (!options.parse(argc, argv))
        return 0;

    // Client-side commands: they attach to (or read the output of)
    // another process and must not start an ObsSession of their own —
    // --metrics-socket here names the endpoint to scrape, not one to
    // serve.
    if (!options.positional().empty()) {
        const std::string& command = options.positional()[0];
        if (command == "top")
            return cmdTop(options);
        if (command == "manifest")
            return cmdManifest(options);
    }

    options.applyJobs();

    // Explicit --simd wins over the XBSP_SIMD environment variable
    // (which the lazy first dispatch otherwise consults); likewise
    // --engine over XBSP_ENGINE.
    if (const std::string mode = options.getString("simd");
        !mode.empty())
        simd::select(mode);
    if (const std::string mode = options.getString("engine");
        !mode.empty())
        exec::selectEngineMode(mode);
    // --core wins over XBSP_CORE the same way; unlike the two above
    // it changes results, so it must land before any stage runs.
    if (const std::string mode = options.getString("core");
        !mode.empty() && !cpu::selectCore(mode))
        fatal("unknown --core '{}' (want inorder|decoupled)", mode);

    // Resolve the artifact store before any stage can run: an
    // explicit --cache-dir wins over XBSP_CACHE_DIR (which global()
    // otherwise picks up lazily); --no-cache wins over both.
    if (!options.getBool("cache"))
        store::ArtifactStore::configureGlobal({});
    else if (const std::string dir = options.getString("cache-dir");
             !dir.empty())
        store::ArtifactStore::configureGlobal({dir, true});
    // Writes --stats-out / --trace-out files when main returns.
    obs::ObsSession obsSession(options);

    if (options.positional().empty()) {
        options.printHelp();
        return 1;
    }
    const std::string& command = options.positional()[0];
    if (command == "list")
        return cmdList();
    if (command == "describe")
        return cmdDescribe(options);
    if (command == "bbv")
        return cmdBbv(options);
    if (command == "simpoints")
        return cmdSimpoints(options);
    if (command == "study")
        return cmdStudy(options);
    if (command == "graph")
        return cmdGraph(options);
    if (command == "cache")
        return cmdCache(options);
    if (command == "serve")
        return cmdServe(options);
    if (command == "work")
        return cmdWork(options);
    if (command == "submit")
        return cmdSubmit(options);
    if (command == "cores")
        return cmdCores(options);
    if (command == "codec-roundtrip")  // hidden; cross-process tests
        return cmdCodecRoundtrip(options);
    fatal("unknown command '{}'", command);
}
