/**
 * @file
 * Scenario 1 of the paper's introduction: evaluating an ISA change
 * (32-bit vs 64-bit binaries of the same program) with sampled
 * simulation.  Walks through what an architect would do: pick
 * cross-binary simulation points once, then compare the 32-bit and
 * 64-bit binaries on the *same* regions of execution, and contrast
 * the resulting speedup estimate with the per-binary baseline.
 *
 *   ./isa_extension_study --workload mcf
 */

#include <cstdio>
#include <iostream>

#include "harness/experiments.hh"
#include "sim/study.hh"
#include "util/options.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options("isa_extension_study: compare 32-bit and 64-bit "
                    "binaries with cross-binary simulation points");
    options.addString("workload", "workload name", "mcf");
    options.addDouble("scale", "work scale", 1.0);
    options.addBool("optimized", "compare the optimized pair (32o/64o)"
                    " instead of the unoptimized pair", true);
    options.addJobs();
    if (!options.parse(argc, argv))
        return 0;
    options.applyJobs();

    const std::string name = options.getString("workload");
    sim::StudyConfig config = harness::defaultStudyConfig();
    const sim::CrossBinaryStudy study = sim::CrossBinaryStudy::run(
        workloads::makeWorkload(name, options.getDouble("scale")),
        config);

    // Indices into the standard binary order 32u,32o,64u,64o.
    const std::size_t a = options.getBool("optimized") ? 1 : 0;
    const std::size_t b = options.getBool("optimized") ? 3 : 2;
    const auto& binA = study.perBinary()[a];
    const auto& binB = study.perBinary()[b];

    std::printf("ISA study for '%s': %s vs %s\n\n", name.c_str(),
                bin::targetName(binA.target).c_str(),
                bin::targetName(binB.target).c_str());
    std::printf("The 64-bit binary executes %.1fM instructions vs "
                "%.1fM for 32-bit\n(denser code), but its "
                "pointer-heavy data grows, shifting cache behaviour."
                "\n\n",
                static_cast<double>(binB.totalInstrs) / 1e6,
                static_cast<double>(binA.totalInstrs) / 1e6);

    Table table("Which ISA wins, and do the sampling schemes agree?",
                {"quantity", "full simulation", "per-binary SimPoint",
                 "mappable SimPoint"});
    auto addRow = [&](const std::string& what, double truth,
                      double fli, double vli) {
        table.startRow();
        table.addCell(what);
        table.addNumber(truth, 4);
        table.addNumber(fli, 4);
        table.addNumber(vli, 4);
    };
    addRow(bin::targetName(binA.target) + " CPI",
           binA.fliEstimate.trueCpi, binA.fliEstimate.estCpi,
           binA.vliEstimate.estCpi);
    addRow(bin::targetName(binB.target) + " CPI",
           binB.fliEstimate.trueCpi, binB.fliEstimate.estCpi,
           binB.vliEstimate.estCpi);
    addRow("speedup (cycles 32/64)", study.trueSpeedup(a, b),
           study.estimatedSpeedup(sim::Method::PerBinaryFli, a, b),
           study.estimatedSpeedup(sim::Method::MappableVli, a, b));
    table.print(std::cout);

    std::printf("\nSpeedup-estimation error: per-binary %.2f%%, "
                "mappable %.2f%%\n",
                study.speedupError(sim::Method::PerBinaryFli, a, b) *
                    100.0,
                study.speedupError(sim::Method::MappableVli, a, b) *
                    100.0);
    std::printf("Mappable points found: %zu (rejected %zu)\n",
                study.mappable().points.size(),
                study.mappable().rejected.size());
    return 0;
}
