/**
 * @file
 * Quickstart: run the complete cross-binary SimPoint pipeline on one
 * workload and print what the library found — mappable points, the
 * VLI partition, the chosen simulation points, and the accuracy of
 * both sampling schemes against full simulation.
 *
 *   ./quickstart --workload swim --scale 0.5
 */

#include <cstdio>
#include <iostream>

#include "harness/experiments.hh"
#include "sim/report.hh"
#include "sim/study.hh"
#include "util/options.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options("quickstart: one-workload cross-binary SimPoint "
                    "walkthrough");
    options.addString("workload", "workload name", "swim");
    options.addDouble("scale", "work scale", 1.0);
    options.addUint("interval", "interval target (instructions)",
                    250000);
    options.addBool("stats", "dump gem5-style statistics at the end",
                    false);
    options.addJobs();
    if (!options.parse(argc, argv))
        return 0;
    options.applyJobs();

    const std::string name = options.getString("workload");
    ir::Program program =
        workloads::makeWorkload(name, options.getDouble("scale"));

    sim::StudyConfig config = harness::defaultStudyConfig();
    config.intervalTarget = options.getUint("interval");

    std::printf("Running cross-binary SimPoint study for '%s'...\n",
                name.c_str());
    const sim::CrossBinaryStudy study =
        sim::CrossBinaryStudy::run(program, config);

    std::printf("\nMappable points: %zu accepted, %zu rejected\n",
                study.mappable().points.size(),
                study.mappable().rejected.size());
    std::printf("VLI partition: %zu intervals (target %llu instrs)\n",
                study.partition().intervalCount(),
                static_cast<unsigned long long>(config.intervalTarget));
    std::printf("VLI clustering: %zu phases (maxK %u)\n\n",
                study.vliClustering().phases.size(),
                config.simpoint.maxK);

    Table summary("Per-binary results",
                  {"binary", "instrs(M)", "true CPI", "FLI k",
                   "FLI est CPI", "FLI err", "VLI est CPI",
                   "VLI err"});
    for (const sim::BinaryStudy& bs : study.perBinary()) {
        summary.startRow();
        summary.addCell(bin::targetName(bs.target));
        summary.addNumber(
            static_cast<double>(bs.totalInstrs) / 1e6, 1);
        summary.addNumber(bs.fliEstimate.trueCpi, 3);
        summary.addInteger(
            static_cast<long long>(bs.fliClustering.phases.size()));
        summary.addNumber(bs.fliEstimate.estCpi, 3);
        summary.addPercent(bs.fliEstimate.cpiError, 2);
        summary.addNumber(bs.vliEstimate.estCpi, 3);
        summary.addPercent(bs.vliEstimate.cpiError, 2);
    }
    summary.print(std::cout);

    Table speedups("Speedup estimation",
                   {"pair", "true", "FLI est", "FLI err", "VLI est",
                    "VLI err"});
    auto pairs = sim::samePlatformPairs();
    for (const auto& pair : sim::crossPlatformPairs())
        pairs.push_back(pair);
    for (const auto& pair : pairs) {
        speedups.startRow();
        speedups.addCell(pair.label);
        speedups.addNumber(study.trueSpeedup(pair.a, pair.b), 3);
        speedups.addNumber(
            study.estimatedSpeedup(sim::Method::PerBinaryFli, pair.a,
                                   pair.b), 3);
        speedups.addPercent(
            study.speedupError(sim::Method::PerBinaryFli, pair.a,
                               pair.b), 2);
        speedups.addNumber(
            study.estimatedSpeedup(sim::Method::MappableVli, pair.a,
                                   pair.b), 3);
        speedups.addPercent(
            study.speedupError(sim::Method::MappableVli, pair.a,
                               pair.b), 2);
    }
    std::printf("\n");
    speedups.print(std::cout);

    if (options.getBool("stats")) {
        std::printf("\n");
        sim::dumpStudyStats(std::cout, study);
    }
    return 0;
}
