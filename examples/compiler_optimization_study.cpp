/**
 * @file
 * Scenario 3 of the paper's introduction: a compiler team evaluating
 * optimizations by simulation before silicon exists.  Compares the
 * unoptimized and optimized binaries of one program and inspects
 * *why* the per-binary baseline can mislead: its phases do not
 * correspond across binaries, so its per-phase biases shift, while
 * the mappable scheme simulates the same source regions everywhere.
 *
 *   ./compiler_optimization_study --workload gcc
 */

#include <cstdio>
#include <iostream>

#include "harness/experiments.hh"
#include "sim/study.hh"
#include "util/options.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

void
printPhases(const char* caption, const sim::BinaryEstimate& estimate)
{
    Table table(caption, {"phase", "weight", "true CPI", "SP CPI",
                          "bias"});
    for (const auto& phase : estimate.phasesByWeight()) {
        table.startRow();
        table.addInteger(phase.phaseId);
        table.addPercent(phase.weight, 1);
        table.addNumber(phase.trueCpi, 3);
        table.addNumber(phase.spCpi, 3);
        table.addPercent(phase.bias, 1);
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    Options options("compiler_optimization_study: O0 vs O2 evaluation "
                    "with both sampling schemes");
    options.addString("workload", "workload name", "gcc");
    options.addDouble("scale", "work scale", 1.0);
    options.addJobs();
    if (!options.parse(argc, argv))
        return 0;
    options.applyJobs();

    const std::string name = options.getString("workload");
    const sim::CrossBinaryStudy study = sim::CrossBinaryStudy::run(
        workloads::makeWorkload(name, options.getDouble("scale")),
        harness::defaultStudyConfig());

    const auto& unopt = study.perBinary()[0]; // 32u
    const auto& opt = study.perBinary()[1];   // 32o

    std::printf("Optimization study for '%s' (32-bit)\n", name.c_str());
    std::printf("O0 executes %.1fM instructions, O2 %.1fM "
                "(%.2fx dynamic reduction)\n\n",
                static_cast<double>(unopt.totalInstrs) / 1e6,
                static_cast<double>(opt.totalInstrs) / 1e6,
                static_cast<double>(unopt.totalInstrs) /
                    static_cast<double>(opt.totalInstrs));

    std::printf("--- Per-binary SimPoint: phases do NOT correspond "
                "across binaries ---\n");
    printPhases("O0 phases (per-binary clustering)", unopt.fliEstimate);
    printPhases("O2 phases (per-binary clustering)", opt.fliEstimate);

    std::printf("--- Mappable SimPoint: one clustering, same regions "
                "in both binaries ---\n");
    printPhases("O0 phases (mapped)", unopt.vliEstimate);
    printPhases("O2 phases (mapped)", opt.vliEstimate);

    const double trueSpd = study.trueSpeedup(0, 1);
    std::printf("True O2 speedup: %.3f\n", trueSpd);
    std::printf("Per-binary estimate: %.3f (error %.2f%%)\n",
                study.estimatedSpeedup(sim::Method::PerBinaryFli, 0, 1),
                study.speedupError(sim::Method::PerBinaryFli, 0, 1) *
                    100.0);
    std::printf("Mappable estimate:   %.3f (error %.2f%%)\n",
                study.estimatedSpeedup(sim::Method::MappableVli, 0, 1),
                study.speedupError(sim::Method::MappableVli, 0, 1) *
                    100.0);
    return 0;
}
