/**
 * @file
 * Using the library as a toolkit: define your own program in the IR
 * builder DSL, compile it for the four targets, inspect what the
 * model compiler did to it (inlining, unrolling, splitting), see
 * which markers stayed mappable and why the rest were rejected, and
 * run the full cross-binary pipeline on it.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiments.hh"
#include "ir/builder.hh"
#include "sim/study.hh"
#include "util/options.hh"

using namespace xbsp;

namespace
{

/** A small two-phase program with deliberately tricky structure. */
ir::Program
buildDemoProgram()
{
    using namespace ir;
    ProgramBuilder b("demo");

    // A helper the optimizer inlines everywhere: its symbol will not
    // be mappable, but the loop inside keeps its source line.
    b.procedure("dot_product", InlineHint::Always)
        .loop(64, [&](StmtSeq& s) {
            s.block(6, 2, stridePattern(1, 64_KiB, 8, 0.0, 0.0));
        });

    // A helper inlined at alternating call sites: its entry counts
    // diverge across optimization levels, so it is rejected.
    b.procedure("log_stats", InlineHint::Partial)
        .block(12, 4, stridePattern(2, 32_KiB, 8, 0.9, 0.0));

    // Phase 1: streaming transform with an unrollable kernel.
    b.procedure("transform").loop(9000, [&](StmtSeq& s) {
        s.block(20, 8, stridePattern(3, 512_KiB, 8, 0.4, 0.0));
        s.loop(8, [&](StmtSeq& inner) { inner.compute(7); },
               LoopOpts{.unrollable = true});
        s.call("dot_product");
    });

    // Phase 2: irregular lookups, loop gets split by the optimizer.
    b.procedure("lookup").loop(
        7000,
        [&](StmtSeq& s) {
            s.block(18, 7, randomPattern(4, 384_KiB, 0.2, 0.5));
            s.block(14, 5, chasePattern(5, 256_KiB, 1.0));
        },
        LoopOpts{.splittable = true});

    StmtSeq main = b.procedure("main");
    main.loop(6, [&](StmtSeq& round) {
        round.call("transform");
        round.call("log_stats");
        round.call("lookup");
        round.call("log_stats");
    });
    return b.build();
}

} // namespace

int
main(int argc, char** argv)
{
    Options options("custom_workload: define a program in the IR DSL "
                    "and run the whole pipeline on it");
    options.addBool("dump-binaries", "print the compiled binaries",
                    false);
    options.addJobs();
    if (!options.parse(argc, argv))
        return 0;
    options.applyJobs();

    const ir::Program program = buildDemoProgram();
    std::printf("Program '%s': %zu procedures, %.2fM source "
                "instructions\n\n", program.name.c_str(),
                program.procedures.size(),
                static_cast<double>(
                    ir::sourceInstructionCount(program)) / 1e6);

    sim::StudyConfig config = harness::defaultStudyConfig();
    config.intervalTarget = 100000; // small demo program
    const sim::CrossBinaryStudy study =
        sim::CrossBinaryStudy::run(program, config);

    if (options.getBool("dump-binaries")) {
        for (const auto& binary : study.binaries())
            std::cout << bin::describe(binary) << "\n";
    }

    std::printf("--- What stayed mappable across all four binaries "
                "---\n");
    for (const auto& point : study.mappable().points) {
        std::printf("  %-28s fires %llu times\n",
                    point.key.describe().c_str(),
                    static_cast<unsigned long long>(point.execCount));
    }
    std::printf("--- What was rejected, and why ---\n");
    for (const auto& rejected : study.mappable().rejected) {
        const char* why = "";
        switch (rejected.reason) {
          case core::RejectReason::MissingInSomeBinary:
            why = "missing in some binary (inlined symbol / split "
                  "loop line)";
            break;
          case core::RejectReason::CountMismatch:
            why = "execution counts differ (partial inlining / "
                  "unrolling / splitting)";
            break;
          case core::RejectReason::NeverExecuted:
            why = "never executed";
            break;
        }
        std::printf("  %-28s %s\n", rejected.key.describe().c_str(),
                    why);
    }

    std::printf("\nVLI partition: %zu intervals; %zu phases chosen\n",
                study.partition().intervalCount(),
                study.vliClustering().phases.size());
    for (const auto& bs : study.perBinary()) {
        std::printf("  %-4s true CPI %.3f, mappable estimate %.3f "
                    "(err %.2f%%)\n",
                    bin::targetName(bs.target).c_str(),
                    bs.vliEstimate.trueCpi, bs.vliEstimate.estCpi,
                    bs.vliEstimate.cpiError * 100.0);
    }
    return 0;
}
